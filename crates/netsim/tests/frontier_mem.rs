//! The tentpole memory claim, asserted: simulating a **million-node**
//! `HB(7, 10)` (1,310,720 nodes, ~14.4M directed channels) under the
//! implicit topology materialises channel records proportional to the
//! *active traffic*, never to the topology — a thousand packets touch
//! on the order of a thousand channels, while dense storage would
//! allocate all fourteen million up front.

use hb_netsim::topology::{HbRouteOrder, ImplicitTopology, NetTopology};
use hb_netsim::{run_with_mem, Injection, SimConfig};

/// A fixed-count deterministic workload (no RNG): `packets` arithmetic
/// src/dst pairs spread over `cycles` injection cycles.
fn arithmetic_workload(nn: usize, cycles: u64, packets: usize) -> Vec<Injection> {
    let per_cycle = (packets as u64).div_ceil(cycles.max(1)) as usize;
    let mut inj = Vec::with_capacity(packets);
    let mut i = 0u64;
    'fill: for at in 0..cycles {
        for _ in 0..per_cycle {
            let src = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as usize % nn;
            let dst = (i.wrapping_mul(0xBF58_476D_1CE4_E5B9) >> 13) as usize % nn;
            i += 1;
            if src != dst {
                inj.push(Injection { src, dst, at });
            }
            if inj.len() == packets {
                break 'fill;
            }
        }
    }
    inj
}

#[test]
fn million_node_memory_is_bounded_by_active_traffic() {
    const PACKETS: usize = 1000;
    let t = ImplicitTopology::new(7, 10, HbRouteOrder::CubeFirst).unwrap();
    assert!(
        t.num_nodes() >= 1_000_000,
        "HB(7, 10) is the million-node shape"
    );
    let inj = arithmetic_workload(t.num_nodes(), 20, PACKETS);
    let cfg = SimConfig::bounded(10_000).with_implicit_topology(true);
    let (stats, mem) = run_with_mem(&t, &inj, cfg);
    assert_eq!(stats.delivered, stats.offered, "all packets deliver");
    assert!(stats.offered >= 990, "workload is ~{PACKETS} packets");
    // The topology has ~14.4M channels; the run may touch only O(active
    // packets) of them. Each in-flight packet occupies one channel and
    // admits credit on at most one more, so 2x in-flight is a hard
    // ceiling — and in-flight never exceeds the offered packet count.
    assert!(
        mem.num_channels > 14_000_000,
        "dense storage would need {} records",
        mem.num_channels
    );
    assert!(
        mem.peak_channel_records <= 2 * PACKETS,
        "peak {} channel records exceeds the active-traffic bound {}",
        mem.peak_channel_records,
        2 * PACKETS
    );
    // And the store's heap footprint reflects the sparse bound, not the
    // channel count (dense u32 queues alone would spine >100 MB).
    assert!(
        mem.channel_store_bytes < 4 << 20,
        "channel store holds {} bytes",
        mem.channel_store_bytes
    );
}

#[test]
fn sparse_records_recycle_across_waves() {
    // Two well-separated waves re-use the same records: the peak is set
    // by one wave's concurrency, not by the union of channels touched.
    const PACKETS: usize = 200;
    let t = ImplicitTopology::new(5, 6, HbRouteOrder::CubeFirst).unwrap();
    let nn = t.num_nodes();
    let mut inj = arithmetic_workload(nn, 1, PACKETS);
    let mut second: Vec<Injection> = arithmetic_workload(nn, 1, PACKETS)
        .into_iter()
        .map(|p| Injection {
            src: (p.src + nn / 2) % nn,
            dst: (p.dst + nn / 3) % nn,
            at: 200,
        })
        .filter(|p| p.src != p.dst)
        .collect();
    inj.append(&mut second);
    let (stats, mem) = run_with_mem(
        &t,
        &inj,
        SimConfig::bounded(10_000).with_implicit_topology(true),
    );
    assert_eq!(stats.delivered, stats.offered);
    assert!(
        mem.peak_channel_records <= 2 * PACKETS,
        "peak {} exceeds one wave's bound {} — records are not recycled",
        mem.peak_channel_records,
        2 * PACKETS
    );
}
