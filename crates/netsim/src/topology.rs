//! Topology adapters: a uniform interface over the four networks so the
//! simulator, workloads, and fault experiments are topology-agnostic.
//!
//! Every adapter owns its materialised CSR graph plus whatever routing
//! state its algorithmic router needs; `route` returns the full node path
//! (source routing — the packet carries its path), which is how the
//! paper's oblivious routers operate.
//!
//! The adaptive hot path never allocates: [`NetTopology::productive_hops_into`]
//! writes the productive neighbor set into a caller-provided buffer (a
//! stack array of [`MAX_PRODUCTIVE`] suffices — degree is at most
//! `m + 4` and `m <= 26`), and each adapter answers it with the
//! closed-form distance kernels (`dist`) instead of materialising routes.

use hb_butterfly::{routing as brouting, Butterfly};
use hb_core::{routing as hbrouting, HbNode, HyperButterfly};
use hb_debruijn::HyperDeBruijn;
use hb_graphs::{Graph, NodeId, Result};
use hb_hypercube::{routing as hrouting, Hypercube};

/// Upper bound on the number of productive hops any adapter reports:
/// the maximum degree across the families (`m + 4` for `HB`, `m <= 26`),
/// rounded up. A `[NodeId; MAX_PRODUCTIVE]` stack buffer is always big
/// enough for [`NetTopology::productive_hops_into`].
pub const MAX_PRODUCTIVE: usize = 32;

/// A network topology as seen by the simulator.
pub trait NetTopology: Send + Sync {
    /// Display name, e.g. `HB(3, 8)`. Adapters cache this at
    /// construction — calling it is free.
    fn name(&self) -> &str;

    /// Number of nodes.
    fn num_nodes(&self) -> usize {
        self.explicit_graph()
            .expect("invariant: implicit topologies override num_nodes")
            .num_nodes()
    }

    /// The materialised graph, if this adapter owns one. Implicit
    /// (algebraic) topologies return `None`; the simulators then derive
    /// the channel layout from [`Self::uniform_degree`] and
    /// [`Self::neighbors_into`] instead of adjacency arrays.
    fn explicit_graph(&self) -> Option<&Graph>;

    /// The materialised graph (used for channel layout and fault
    /// analysis). Callers that can run without a materialised graph
    /// should prefer [`Self::explicit_graph`] and the algebraic surface.
    fn graph(&self) -> &Graph {
        self.explicit_graph()
            .expect("invariant: graph() is only called on explicit topologies")
    }

    /// Uniform degree, if every node has exactly this many neighbors.
    /// A `Some` answer licenses the arithmetic channel layout
    /// `channel(u, port) = u * degree + port` (ports in ascending
    /// neighbor order), which matches the CSR layout of the materialised
    /// graph exactly. `None` (the default) means the layout must come
    /// from [`Self::explicit_graph`].
    fn uniform_degree(&self) -> Option<usize> {
        None
    }

    /// Writes the neighbors of `v` into `buf` in **ascending node-id
    /// order** (the same order as the materialised graph's sorted
    /// adjacency), returning how many were written. `buf` must hold at
    /// least [`MAX_PRODUCTIVE`] entries. The default reads the explicit
    /// graph; implicit topologies override it with the Cayley generators.
    fn neighbors_into(&self, v: NodeId, buf: &mut [NodeId]) -> usize {
        let g = self
            .explicit_graph()
            .expect("invariant: implicit topologies override neighbors_into");
        let adj = g.neighbors(v);
        for (k, &w) in adj.iter().enumerate() {
            buf[k] = w as NodeId;
        }
        adj.len()
    }

    /// The topology's own shortest (or near-shortest oblivious) route,
    /// node sequence inclusive of both endpoints. `src == dst` returns
    /// `[src]`.
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId>;

    /// The single oblivious next hop from `cur` toward `dst`
    /// (`route(cur, dst)[1]`). Requires `cur != dst`. Adapters override
    /// this to derive the hop algebraically instead of materialising the
    /// whole path.
    fn next_hop(&self, cur: NodeId, dst: NodeId) -> NodeId {
        debug_assert_ne!(cur, dst, "next_hop requires cur != dst");
        self.route(cur, dst)[1]
    }

    /// Writes the productive next hops for minimal **adaptive** routing
    /// — neighbors of `cur` on *some* shortest path toward `dst` — into
    /// `buf`, returning how many were written. `buf` must hold at least
    /// [`MAX_PRODUCTIVE`] entries; prior contents are irrelevant. The
    /// default reports the single oblivious next hop; topologies with
    /// cheap distance functions override it with the full set.
    fn productive_hops_into(&self, cur: NodeId, dst: NodeId, buf: &mut [NodeId]) -> usize {
        if cur == dst {
            return 0;
        }
        buf[0] = self.next_hop(cur, dst);
        1
    }

    /// Allocating convenience wrapper over
    /// [`Self::productive_hops_into`], same set and order.
    fn productive_hops(&self, cur: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut buf = [0 as NodeId; MAX_PRODUCTIVE];
        let k = self.productive_hops_into(cur, dst, &mut buf);
        buf[..k].to_vec()
    }
}

/// `Some(d)` when every node of `g` has exactly `d` neighbors — the
/// check backing every adapter's [`NetTopology::uniform_degree`] claim
/// (an unverified claim would silently desynchronise the arithmetic
/// channel layout from the CSR one).
fn uniform_degree_of(g: &Graph) -> Option<usize> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let d = g.degree(0);
    (1..n).all(|v| g.degree(v) == d).then_some(d)
}

/// Hypercube `H_m` with dimension-ordered (bit-fixing) routing.
pub struct HypercubeNet {
    h: Hypercube,
    graph: Graph,
    udeg: Option<usize>,
    name: String,
}

impl HypercubeNet {
    /// Builds the adapter.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(m: u32) -> Result<Self> {
        let h = Hypercube::new(m)?;
        let graph = h.build_graph()?;
        Ok(Self {
            udeg: uniform_degree_of(&graph),
            graph,
            name: format!("H({})", h.m()),
            h,
        })
    }
}

impl NetTopology for HypercubeNet {
    fn name(&self) -> &str {
        &self.name
    }
    fn explicit_graph(&self) -> Option<&Graph> {
        Some(&self.graph)
    }
    fn uniform_degree(&self) -> Option<usize> {
        self.udeg
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        hrouting::route(&self.h, src as u32, dst as u32)
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }
    fn next_hop(&self, cur: NodeId, dst: NodeId) -> NodeId {
        debug_assert_ne!(cur, dst, "next_hop requires cur != dst");
        // Ascending bit fixing corrects the lowest differing dimension
        // first — exactly `route(cur, dst)[1]`.
        cur ^ (1usize << (cur ^ dst).trailing_zeros())
    }
    fn productive_hops_into(&self, cur: NodeId, dst: NodeId, buf: &mut [NodeId]) -> usize {
        // Any differing dimension may be corrected next.
        let diff = cur ^ dst;
        let mut k = 0;
        for d in 0..self.h.m() {
            if diff >> d & 1 == 1 {
                buf[k] = cur ^ (1usize << d);
                k += 1;
            }
        }
        k
    }
}

/// Wrapped butterfly `B_n` with the optimal gap-covering-walk router.
pub struct ButterflyNet {
    b: Butterfly,
    graph: Graph,
    udeg: Option<usize>,
    name: String,
}

impl ButterflyNet {
    /// Builds the adapter.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(n: u32) -> Result<Self> {
        let b = Butterfly::new(n)?;
        let graph = b.build_graph()?;
        Ok(Self {
            udeg: uniform_degree_of(&graph),
            graph,
            name: format!("B({})", b.n()),
            b,
        })
    }
}

impl NetTopology for ButterflyNet {
    fn name(&self) -> &str {
        &self.name
    }
    fn explicit_graph(&self) -> Option<&Graph> {
        Some(&self.graph)
    }
    fn uniform_degree(&self) -> Option<usize> {
        self.udeg
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        brouting::route(&self.b, self.b.node(src), self.b.node(dst))
            .into_iter()
            .map(|x| x.index())
            .collect()
    }
    fn productive_hops_into(&self, cur: NodeId, dst: NodeId, buf: &mut [NodeId]) -> usize {
        // The closed-form distance is O(n^2) arithmetic: test all 4
        // neighbors, in generator order (matching the graph layout).
        let u = self.b.node(cur);
        let v = self.b.node(dst);
        let d = brouting::dist(u, v);
        if d == 0 {
            return 0;
        }
        let mut k = 0;
        for w in u.neighbors() {
            if brouting::dist(w, v) < d {
                buf[k] = w.index();
                k += 1;
            }
        }
        k
    }
}

/// Which leg the hyper-butterfly router takes first — the routing-order
/// ablation of DESIGN.md (lengths are identical; congestion is not).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HbRouteOrder {
    /// Hypercube leg first (the paper's presentation).
    CubeFirst,
    /// Butterfly leg first.
    ButterflyFirst,
}

/// Hyper-butterfly `HB(m, n)` with the paper's optimal two-leg router.
pub struct HyperButterflyNet {
    hb: HyperButterfly,
    graph: Graph,
    udeg: Option<usize>,
    order: HbRouteOrder,
    name: String,
}

impl HyperButterflyNet {
    /// Builds the adapter.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(m: u32, n: u32, order: HbRouteOrder) -> Result<Self> {
        let hb = HyperButterfly::new(m, n)?;
        let graph = hb.build_graph()?;
        Ok(Self {
            udeg: uniform_degree_of(&graph),
            graph,
            name: format!("HB({}, {})", hb.m(), hb.n()),
            hb,
            order,
        })
    }

    /// The wrapped topology.
    pub fn topology(&self) -> &HyperButterfly {
        &self.hb
    }
}

impl NetTopology for HyperButterflyNet {
    fn name(&self) -> &str {
        &self.name
    }
    fn explicit_graph(&self) -> Option<&Graph> {
        Some(&self.graph)
    }
    fn uniform_degree(&self) -> Option<usize> {
        self.udeg
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let u = self.hb.node(src);
        let v = self.hb.node(dst);
        let path: Vec<HbNode> = match self.order {
            HbRouteOrder::CubeFirst => hbrouting::route(&self.hb, u, v),
            HbRouteOrder::ButterflyFirst => hbrouting::route_butterfly_first(&self.hb, u, v),
        };
        path.into_iter().map(|x| self.hb.index(x)).collect()
    }
    fn productive_hops_into(&self, cur: NodeId, dst: NodeId, buf: &mut [NodeId]) -> usize {
        // Remark 8 splits the distance per factor, so productivity is
        // decided per leg: a cube neighbor is productive iff it fixes a
        // differing dimension, a butterfly neighbor iff it lowers the
        // butterfly closed-form distance. Enumeration order matches the
        // graph layout: dimensions ascending, then generator order.
        let u = self.hb.node(cur);
        let v = self.hb.node(dst);
        let mut k = 0;
        let diff = u.h ^ v.h;
        for dim in 0..self.hb.m() {
            if diff >> dim & 1 == 1 {
                buf[k] = self.hb.index(HbNode::new(u.h ^ (1 << dim), u.b));
                k += 1;
            }
        }
        let db = brouting::dist(u.b, v.b);
        if db > 0 {
            for wb in u.b.neighbors() {
                if brouting::dist(wb, v.b) < db {
                    buf[k] = self.hb.index(HbNode::new(u.h, wb));
                    k += 1;
                }
            }
        }
        k
    }
}

/// Hyper-butterfly `HB(m, n)` computed **implicitly** from the Cayley
/// structure: no adjacency arrays, no materialised [`Graph`] — neighbors
/// come from the generators, `next_hop`/`productive_hops_into` from the
/// closed-form per-leg distance kernels (Remarks 6/8), and the channel
/// layout from the uniform degree `m + 4`. Memory is O(1) regardless of
/// `2^m · n · 2^n` nodes, which is what lets the frontier simulation
/// engine run million-node shapes with state proportional to the traffic
/// actually touched.
///
/// The neighbor enumeration is sorted ascending, so ports — and
/// therefore channel ids — agree exactly with the CSR layout the
/// explicit [`HyperButterflyNet`] adapter would produce.
pub struct ImplicitTopology {
    hb: HyperButterfly,
    order: HbRouteOrder,
    degree: usize,
    num_nodes: usize,
    name: String,
}

impl ImplicitTopology {
    /// Builds the implicit adapter. Unlike [`HyperButterflyNet::new`]
    /// this never materialises the graph — construction is O(1) in the
    /// node count.
    ///
    /// # Errors
    /// Propagates core construction failures, and rejects shapes whose
    /// generators coincide at a node (degree below `m + 4` would break
    /// the arithmetic channel layout; all paper-relevant shapes with
    /// `n >= 3` have distinct generators).
    pub fn new(m: u32, n: u32, order: HbRouteOrder) -> Result<Self> {
        let hb = HyperButterfly::new(m, n)?;
        let degree = hb.degree() as usize;
        let t = Self {
            num_nodes: hb.num_nodes(),
            name: format!("HB({}, {})", hb.m(), hb.n()),
            hb,
            order,
            degree,
        };
        // Cayley graphs are vertex-transitive, so checking one node
        // suffices: if the m + 4 generator images are distinct at the
        // identity they are distinct everywhere.
        let mut buf = [0 as NodeId; MAX_PRODUCTIVE];
        let k = t.neighbors_into(0, &mut buf);
        if k != degree || buf[..k].windows(2).any(|w| w[0] == w[1]) {
            return Err(hb_graphs::GraphError::InvalidParameter(format!(
                "implicit HB({m}, {n}) needs {degree} distinct generator images, got {k}"
            )));
        }
        Ok(t)
    }

    /// The wrapped topology.
    pub fn topology(&self) -> &HyperButterfly {
        &self.hb
    }
}

impl NetTopology for ImplicitTopology {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }
    fn explicit_graph(&self) -> Option<&Graph> {
        None
    }
    fn uniform_degree(&self) -> Option<usize> {
        Some(self.degree)
    }
    fn neighbors_into(&self, v: NodeId, buf: &mut [NodeId]) -> usize {
        let u = self.hb.node(v);
        let mut k = 0;
        for dim in 0..self.hb.m() {
            buf[k] = self.hb.index(HbNode::new(u.h ^ (1 << dim), u.b));
            k += 1;
        }
        for wb in u.b.neighbors() {
            buf[k] = self.hb.index(HbNode::new(u.h, wb));
            k += 1;
        }
        buf[..k].sort_unstable();
        k
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let u = self.hb.node(src);
        let v = self.hb.node(dst);
        let path: Vec<HbNode> = match self.order {
            HbRouteOrder::CubeFirst => hbrouting::route(&self.hb, u, v),
            HbRouteOrder::ButterflyFirst => hbrouting::route_butterfly_first(&self.hb, u, v),
        };
        path.into_iter().map(|x| self.hb.index(x)).collect()
    }
    fn productive_hops_into(&self, cur: NodeId, dst: NodeId, buf: &mut [NodeId]) -> usize {
        // Identical per-leg productivity test as the explicit adapter
        // (Remark 8): cube neighbors fixing a differing dimension,
        // butterfly neighbors lowering the closed-form distance.
        let u = self.hb.node(cur);
        let v = self.hb.node(dst);
        let mut k = 0;
        let diff = u.h ^ v.h;
        for dim in 0..self.hb.m() {
            if diff >> dim & 1 == 1 {
                buf[k] = self.hb.index(HbNode::new(u.h ^ (1 << dim), u.b));
                k += 1;
            }
        }
        let db = brouting::dist(u.b, v.b);
        if db > 0 {
            for wb in u.b.neighbors() {
                if brouting::dist(wb, v.b) < db {
                    buf[k] = self.hb.index(HbNode::new(u.h, wb));
                    k += 1;
                }
            }
        }
        k
    }
}

/// Hyper-deBruijn `HD(m, n)` with bit-fixing + shift routing.
pub struct HyperDeBruijnNet {
    hd: HyperDeBruijn,
    graph: Graph,
    name: String,
}

impl HyperDeBruijnNet {
    /// Builds the adapter.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(m: u32, n: u32) -> Result<Self> {
        let hd = HyperDeBruijn::new(m, n)?;
        Ok(Self {
            graph: hd.build_graph()?,
            name: format!("HD({}, {})", hd.m(), hd.n()),
            hd,
        })
    }

    /// The wrapped topology.
    pub fn topology(&self) -> &HyperDeBruijn {
        &self.hd
    }
}

impl NetTopology for HyperDeBruijnNet {
    fn name(&self) -> &str {
        &self.name
    }
    fn explicit_graph(&self) -> Option<&Graph> {
        Some(&self.graph)
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        // The oblivious HD route may briefly revisit a node when the
        // de Bruijn shift leg re-crosses the hypercube leg's endpoint;
        // routes are walks, which the simulator permits.
        self.hd
            .route(self.hd.node(src), self.hd.node(dst))
            .into_iter()
            .map(|x| self.hd.index(x))
            .collect()
    }
}

/// Adapter for an arbitrary [`Graph`]: BFS shortest-path routing with a
/// per-source route cache. Lets the simulator and congestion experiments
/// run on *any* graph — in particular the random-regular **null model**
/// — at the cost of table-driven rather than algebraic routing.
pub struct GraphNet {
    name: String,
    graph: Graph,
    /// `parents[s]` = BFS parent array rooted at `s`, built on demand.
    parents: Vec<std::sync::OnceLock<Vec<u32>>>,
}

impl GraphNet {
    /// Wraps a connected graph.
    pub fn new(name: impl Into<String>, graph: Graph) -> Self {
        let n = graph.num_nodes();
        Self {
            name: name.into(),
            graph,
            parents: (0..n).map(|_| std::sync::OnceLock::new()).collect(),
        }
    }

    fn parents_from(&self, src: NodeId) -> &[u32] {
        self.parents[src].get_or_init(|| hb_graphs::traverse::bfs(&self.graph, src).parent)
    }
}

impl NetTopology for GraphNet {
    fn name(&self) -> &str {
        &self.name
    }
    fn explicit_graph(&self) -> Option<&Graph> {
        Some(&self.graph)
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        if src == dst {
            return vec![src];
        }
        // Shortest path via the dst-rooted BFS tree (so the path walks
        // parent pointers from src toward dst in forward order).
        let parents = self.parents_from(dst);
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let p = parents[cur] as usize;
            assert_ne!(parents[cur], u32::MAX, "graph must be connected");
            path.push(p);
            cur = p;
        }
        path
    }
    fn next_hop(&self, cur: NodeId, dst: NodeId) -> NodeId {
        debug_assert_ne!(cur, dst, "next_hop requires cur != dst");
        // One parent-pointer read in the dst-rooted BFS tree — no path
        // materialisation.
        let p = self.parents_from(dst)[cur];
        assert_ne!(p, u32::MAX, "graph must be connected");
        p as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_routes(t: &dyn NetTopology, pairs: &[(usize, usize)]) {
        let g = t.graph();
        for &(s, d) in pairs {
            let p = t.route(s, d);
            assert_eq!(p[0], s);
            assert_eq!(*p.last().unwrap(), d);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "{}: {s}->{d}", t.name());
            }
        }
    }

    #[test]
    fn all_adapters_produce_valid_routes() {
        let pairs = [(0usize, 1), (0, 30), (7, 22), (13, 13)];
        check_routes(&HypercubeNet::new(5).unwrap(), &pairs);
        check_routes(&ButterflyNet::new(3).unwrap(), &[(0, 1), (0, 20), (7, 19)]);
        check_routes(
            &HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap(),
            &pairs,
        );
        check_routes(
            &HyperButterflyNet::new(2, 3, HbRouteOrder::ButterflyFirst).unwrap(),
            &pairs,
        );
        check_routes(&HyperDeBruijnNet::new(2, 3).unwrap(), &pairs);
    }

    #[test]
    fn graphnet_routes_shortest_on_any_graph() {
        let g = hb_graphs::generators::random_regular(64, 5, 3).unwrap();
        let net = GraphNet::new("rr(64,5)", g);
        check_routes(&net, &[(0, 1), (0, 63), (17, 40), (5, 5)]);
        // Route length equals BFS distance.
        let d = hb_graphs::traverse::distance(net.graph(), 0, 63).unwrap();
        assert_eq!(net.route(0, 63).len() as u32, d + 1);
    }

    #[test]
    fn self_route_is_singleton() {
        let t = HyperButterflyNet::new(1, 3, HbRouteOrder::CubeFirst).unwrap();
        assert_eq!(t.route(5, 5), vec![5]);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(HypercubeNet::new(3).unwrap().name(), "H(3)");
        assert_eq!(
            HyperButterflyNet::new(2, 4, HbRouteOrder::CubeFirst)
                .unwrap()
                .name(),
            "HB(2, 4)"
        );
    }

    /// Every adapter's `next_hop` must agree with `route(cur, dst)[1]`.
    fn check_next_hop(t: &dyn NetTopology, pairs: &[(usize, usize)]) {
        for &(s, d) in pairs {
            if s == d {
                continue;
            }
            assert_eq!(t.next_hop(s, d), t.route(s, d)[1], "{}: {s}->{d}", t.name());
        }
    }

    #[test]
    fn next_hop_matches_route_second_node() {
        let pairs: Vec<(usize, usize)> = (0..32).map(|v| (v, (v * 7 + 3) % 32)).collect();
        check_next_hop(&HypercubeNet::new(5).unwrap(), &pairs);
        check_next_hop(
            &HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap(),
            &pairs,
        );
        check_next_hop(&HyperDeBruijnNet::new(2, 3).unwrap(), &pairs);
        let g = hb_graphs::generators::random_regular(64, 5, 3).unwrap();
        let net = GraphNet::new("rr(64,5)", g);
        let pairs: Vec<(usize, usize)> = (0..64).map(|v| (v, (v * 13 + 1) % 64)).collect();
        check_next_hop(&net, &pairs);
    }

    /// `productive_hops_into` must ignore prior buffer contents and
    /// report exactly the `productive_hops` set, in the same order.
    fn check_buffer_reuse(t: &dyn NetTopology, pairs: &[(usize, usize)]) {
        let mut buf = [usize::MAX; MAX_PRODUCTIVE];
        for &(s, d) in pairs {
            let expect = t.productive_hops(s, d);
            // First call on a poisoned buffer, second reusing whatever
            // the first left behind.
            let k1 = t.productive_hops_into(s, d, &mut buf);
            assert_eq!(&buf[..k1], expect.as_slice(), "{}: {s}->{d}", t.name());
            let k2 = t.productive_hops_into(s, d, &mut buf);
            assert_eq!(k1, k2);
            assert_eq!(&buf[..k2], expect.as_slice(), "{}: {s}->{d}", t.name());
        }
    }

    #[test]
    fn productive_hops_are_buffer_content_independent() {
        let nets: Vec<Box<dyn NetTopology>> = vec![
            Box::new(HypercubeNet::new(5).unwrap()),
            Box::new(ButterflyNet::new(3).unwrap()),
            Box::new(HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap()),
            Box::new(HyperDeBruijnNet::new(2, 3).unwrap()),
        ];
        for t in &nets {
            let n = t.num_nodes();
            let pairs: Vec<(usize, usize)> = (0..n).map(|v| (v, (v * 11 + 5) % n)).collect();
            check_buffer_reuse(t.as_ref(), &pairs);
        }
    }

    /// Productive hops are exactly the distance-decreasing neighbors, by
    /// the BFS definition, for the algebraic adapters.
    #[test]
    fn productive_hops_equal_bfs_decreasing_neighbors() {
        let nets: Vec<Box<dyn NetTopology>> = vec![
            Box::new(HypercubeNet::new(4).unwrap()),
            Box::new(ButterflyNet::new(3).unwrap()),
            Box::new(HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap()),
        ];
        for t in &nets {
            let g = t.graph();
            let n = t.num_nodes();
            for dst in [0usize, n / 3, n - 1] {
                let tree = hb_graphs::traverse::bfs(g, dst);
                for cur in 0..n {
                    let mut expect: Vec<NodeId> = g
                        .neighbors(cur)
                        .iter()
                        .map(|&w| w as usize)
                        .filter(|&w| tree.dist[w] < tree.dist[cur])
                        .collect();
                    let mut got = t.productive_hops(cur, dst);
                    expect.sort_unstable();
                    got.sort_unstable();
                    assert_eq!(got, expect, "{}: {cur}->{dst}", t.name());
                }
            }
        }
    }
}
