//! Topology adapters: a uniform interface over the four networks so the
//! simulator, workloads, and fault experiments are topology-agnostic.
//!
//! Every adapter owns its materialised CSR graph plus whatever routing
//! state its algorithmic router needs; `route` returns the full node path
//! (source routing — the packet carries its path), which is how the
//! paper's oblivious routers operate.

use hb_butterfly::{routing as brouting, Butterfly};
use hb_core::{routing as hbrouting, HbNode, HyperButterfly};
use hb_debruijn::HyperDeBruijn;
use hb_graphs::{Graph, NodeId, Result};
use hb_hypercube::{routing as hrouting, Hypercube};

/// A network topology as seen by the simulator.
pub trait NetTopology: Send + Sync {
    /// Display name, e.g. `HB(3, 8)`.
    fn name(&self) -> String;

    /// Number of nodes.
    fn num_nodes(&self) -> usize {
        self.graph().num_nodes()
    }

    /// The materialised graph (used for channel layout and fault
    /// analysis).
    fn graph(&self) -> &Graph;

    /// The topology's own shortest (or near-shortest oblivious) route,
    /// node sequence inclusive of both endpoints. `src == dst` returns
    /// `[src]`.
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId>;

    /// Productive next hops for minimal **adaptive** routing: neighbors
    /// of `cur` that lie on *some* shortest path toward `dst`. The
    /// default falls back to the single oblivious next hop; topologies
    /// with cheap distance functions override it with the full set.
    fn productive_hops(&self, cur: NodeId, dst: NodeId) -> Vec<NodeId> {
        if cur == dst {
            return Vec::new();
        }
        vec![self.route(cur, dst)[1]]
    }
}

/// Hypercube `H_m` with dimension-ordered (bit-fixing) routing.
pub struct HypercubeNet {
    h: Hypercube,
    graph: Graph,
}

impl HypercubeNet {
    /// Builds the adapter.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(m: u32) -> Result<Self> {
        let h = Hypercube::new(m)?;
        Ok(Self {
            graph: h.build_graph()?,
            h,
        })
    }
}

impl NetTopology for HypercubeNet {
    fn name(&self) -> String {
        format!("H({})", self.h.m())
    }
    fn graph(&self) -> &Graph {
        &self.graph
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        hrouting::route(&self.h, src as u32, dst as u32)
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }
    fn productive_hops(&self, cur: NodeId, dst: NodeId) -> Vec<NodeId> {
        // Any differing dimension may be corrected next.
        let diff = cur ^ dst;
        (0..self.h.m())
            .filter(|&d| diff >> d & 1 == 1)
            .map(|d| cur ^ (1usize << d))
            .collect()
    }
}

/// Wrapped butterfly `B_n` with the optimal gap-covering-walk router.
pub struct ButterflyNet {
    b: Butterfly,
    graph: Graph,
}

impl ButterflyNet {
    /// Builds the adapter.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(n: u32) -> Result<Self> {
        let b = Butterfly::new(n)?;
        Ok(Self {
            graph: b.build_graph()?,
            b,
        })
    }
}

impl NetTopology for ButterflyNet {
    fn name(&self) -> String {
        format!("B({})", self.b.n())
    }
    fn graph(&self) -> &Graph {
        &self.graph
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        brouting::route(&self.b, self.b.node(src), self.b.node(dst))
            .into_iter()
            .map(|x| x.index())
            .collect()
    }
    fn productive_hops(&self, cur: NodeId, dst: NodeId) -> Vec<NodeId> {
        // The distance function is O(n): test all 4 neighbors.
        let v = self.b.node(dst);
        let d = brouting::distance(&self.b, self.b.node(cur), v);
        self.b
            .node(cur)
            .neighbors()
            .into_iter()
            .filter(|w| brouting::distance(&self.b, *w, v) < d)
            .map(|w| w.index())
            .collect()
    }
}

/// Which leg the hyper-butterfly router takes first — the routing-order
/// ablation of DESIGN.md (lengths are identical; congestion is not).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HbRouteOrder {
    /// Hypercube leg first (the paper's presentation).
    CubeFirst,
    /// Butterfly leg first.
    ButterflyFirst,
}

/// Hyper-butterfly `HB(m, n)` with the paper's optimal two-leg router.
pub struct HyperButterflyNet {
    hb: HyperButterfly,
    graph: Graph,
    order: HbRouteOrder,
}

impl HyperButterflyNet {
    /// Builds the adapter.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(m: u32, n: u32, order: HbRouteOrder) -> Result<Self> {
        let hb = HyperButterfly::new(m, n)?;
        Ok(Self {
            graph: hb.build_graph()?,
            hb,
            order,
        })
    }

    /// The wrapped topology.
    pub fn topology(&self) -> &HyperButterfly {
        &self.hb
    }
}

impl NetTopology for HyperButterflyNet {
    fn name(&self) -> String {
        format!("HB({}, {})", self.hb.m(), self.hb.n())
    }
    fn graph(&self) -> &Graph {
        &self.graph
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let u = self.hb.node(src);
        let v = self.hb.node(dst);
        let path: Vec<HbNode> = match self.order {
            HbRouteOrder::CubeFirst => hbrouting::route(&self.hb, u, v),
            HbRouteOrder::ButterflyFirst => hbrouting::route_butterfly_first(&self.hb, u, v),
        };
        path.into_iter().map(|x| self.hb.index(x)).collect()
    }
    fn productive_hops(&self, cur: NodeId, dst: NodeId) -> Vec<NodeId> {
        // Remark 8 makes the distance cheap: test all m + 4 neighbors.
        let u = self.hb.node(cur);
        let v = self.hb.node(dst);
        let d = hbrouting::distance(&self.hb, u, v);
        self.hb
            .neighbors(u)
            .into_iter()
            .filter(|w| hbrouting::distance(&self.hb, *w, v) < d)
            .map(|w| self.hb.index(w))
            .collect()
    }
}

/// Hyper-deBruijn `HD(m, n)` with bit-fixing + shift routing.
pub struct HyperDeBruijnNet {
    hd: HyperDeBruijn,
    graph: Graph,
}

impl HyperDeBruijnNet {
    /// Builds the adapter.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(m: u32, n: u32) -> Result<Self> {
        let hd = HyperDeBruijn::new(m, n)?;
        Ok(Self {
            graph: hd.build_graph()?,
            hd,
        })
    }

    /// The wrapped topology.
    pub fn topology(&self) -> &HyperDeBruijn {
        &self.hd
    }
}

impl NetTopology for HyperDeBruijnNet {
    fn name(&self) -> String {
        format!("HD({}, {})", self.hd.m(), self.hd.n())
    }
    fn graph(&self) -> &Graph {
        &self.graph
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        // The oblivious HD route may briefly revisit a node when the
        // de Bruijn shift leg re-crosses the hypercube leg's endpoint;
        // routes are walks, which the simulator permits.
        self.hd
            .route(self.hd.node(src), self.hd.node(dst))
            .into_iter()
            .map(|x| self.hd.index(x))
            .collect()
    }
}

/// Adapter for an arbitrary [`Graph`]: BFS shortest-path routing with a
/// per-source route cache. Lets the simulator and congestion experiments
/// run on *any* graph — in particular the random-regular **null model**
/// — at the cost of table-driven rather than algebraic routing.
pub struct GraphNet {
    name: String,
    graph: Graph,
    /// `parents[s]` = BFS parent array rooted at `s`, built on demand.
    parents: Vec<std::sync::OnceLock<Vec<u32>>>,
}

impl GraphNet {
    /// Wraps a connected graph.
    pub fn new(name: impl Into<String>, graph: Graph) -> Self {
        let n = graph.num_nodes();
        Self {
            name: name.into(),
            graph,
            parents: (0..n).map(|_| std::sync::OnceLock::new()).collect(),
        }
    }

    fn parents_from(&self, src: NodeId) -> &[u32] {
        self.parents[src].get_or_init(|| hb_graphs::traverse::bfs(&self.graph, src).parent)
    }
}

impl NetTopology for GraphNet {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn graph(&self) -> &Graph {
        &self.graph
    }
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        if src == dst {
            return vec![src];
        }
        // Shortest path via the dst-rooted BFS tree (so the path walks
        // parent pointers from src toward dst in forward order).
        let parents = self.parents_from(dst);
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let p = parents[cur] as usize;
            assert_ne!(parents[cur], u32::MAX, "graph must be connected");
            path.push(p);
            cur = p;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_routes(t: &dyn NetTopology, pairs: &[(usize, usize)]) {
        let g = t.graph();
        for &(s, d) in pairs {
            let p = t.route(s, d);
            assert_eq!(p[0], s);
            assert_eq!(*p.last().unwrap(), d);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "{}: {s}->{d}", t.name());
            }
        }
    }

    #[test]
    fn all_adapters_produce_valid_routes() {
        let pairs = [(0usize, 1), (0, 30), (7, 22), (13, 13)];
        check_routes(&HypercubeNet::new(5).unwrap(), &pairs);
        check_routes(&ButterflyNet::new(3).unwrap(), &[(0, 1), (0, 20), (7, 19)]);
        check_routes(
            &HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap(),
            &pairs,
        );
        check_routes(
            &HyperButterflyNet::new(2, 3, HbRouteOrder::ButterflyFirst).unwrap(),
            &pairs,
        );
        check_routes(&HyperDeBruijnNet::new(2, 3).unwrap(), &pairs);
    }

    #[test]
    fn graphnet_routes_shortest_on_any_graph() {
        let g = hb_graphs::generators::random_regular(64, 5, 3).unwrap();
        let net = GraphNet::new("rr(64,5)", g);
        check_routes(&net, &[(0, 1), (0, 63), (17, 40), (5, 5)]);
        // Route length equals BFS distance.
        let d = hb_graphs::traverse::distance(net.graph(), 0, 63).unwrap();
        assert_eq!(net.route(0, 63).len() as u32, d + 1);
    }

    #[test]
    fn self_route_is_singleton() {
        let t = HyperButterflyNet::new(1, 3, HbRouteOrder::CubeFirst).unwrap();
        assert_eq!(t.route(5, 5), vec![5]);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(HypercubeNet::new(3).unwrap().name(), "H(3)");
        assert_eq!(
            HyperButterflyNet::new(2, 4, HbRouteOrder::CubeFirst)
                .unwrap()
                .name(),
            "HB(2, 4)"
        );
    }
}
