//! Deterministic sharded parallel simulation engine.
//!
//! [`run_sharded`] advances the oblivious store-and-forward model of
//! [`crate::sim::run`] on `cfg.threads` workers and produces **byte
//! identical** results — `SimStats`, counters, histograms, link stats,
//! and trace events all match the serial runner exactly, at every
//! thread count. The determinism argument (DESIGN.md §9) rests on three
//! invariants:
//!
//! 1. **Node-aligned contiguous shards.** Channels are laid out in CSR
//!    order (`offsets[u] + port`), and shard `k` owns the contiguous
//!    channel range `[chan_lo[k], chan_lo[k+1])` induced by a node range
//!    — so a packet's *current* channel always belongs to exactly one
//!    worker, and an injection's first channel belongs to the worker
//!    owning its source node.
//! 2. **Canonical service order.** Within a cycle, the serial loop
//!    services active channels in ascending channel id. Each shard does
//!    the same over its own (disjoint, ascending) range; since per
//!    channel effects are independent given queue contents, the union of
//!    shard-local services equals the serial pass.
//! 3. **Ordered cross-shard delivery.** The only inter-channel coupling
//!    is the FIFO order in which same-cycle movers land on a shared
//!    target queue — ascending *source* channel in the serial loop. Each
//!    worker collects its movers in service (= ascending source channel)
//!    order into one mailbox per receiver; receivers drain mailboxes in
//!    sender-shard order, and sender ranges are ascending, so the
//!    concatenation reproduces the serial enqueue order exactly.
//!
//! Cycle protocol (two barriers): *phase A* — each worker injects its
//! due packets, services its channels, publishes cross-shard movers to
//! per-(sender, receiver) mailboxes, and adds its deltas to three
//! monotone counters (injections consumed, packets entering the
//! network, packets delivered); *barrier*; every worker reads the
//! counters and reaches the same drain decision; *phase B* — each
//! worker applies its own local movers and drains its incoming
//! mailboxes in sender order; *barrier*; everyone advances the cycle
//! and stops together. The counters only change in phase A, so the
//! decision read between the barriers is consistent across workers.
//!
//! Stats, scoreboards, and buffered trace events are merged in fixed
//! shard-index order after the join: integer sums/maxes are exact, and
//! events are stable-sorted by `(cycle, phase, channel-or-id)` — a key
//! that is unique across shards — reconstructing the serial emission
//! order.

use crate::pool::PacketPool;
use crate::routes::RouteSrc;
use crate::sim::{ChanLayout, ChanQueues, Injection, Packet, ProfCounters, SimConfig, SimStats};
use crate::topology::NetTopology;
use crate::tsrec::{GlobalTs, LinkTs};
use hb_graphs::NodeId;
use hb_telemetry::{Event, Histogram, LinkStats, Series, Telemetry, TsConfig, CYCLES_COUNTER};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Per-shard dense instrument mirror of `sim::Scoreboard`, covering only
/// the shard's own channel range (index = channel - chan_lo[k]).
struct ShardBoard {
    latency: Histogram,
    hops: Histogram,
    fwd: Vec<u64>,
    busy: Vec<u64>,
    peak: Vec<usize>,
}

/// A buffered trace event: (iteration cycle, phase, order key, event).
/// Phase 0 = injection (key = injection id), phase 1 = service
/// (key = 2*channel for hops, 2*channel + 1 for deliveries).
type BufferedEvent = (u64, u8, u64, Event);

/// One (sender, receiver) mailbox cell: packets that crossed a shard
/// boundary this cycle, with their destination channel. Exactly one
/// writer (phase A) and one reader (phase B), separated by a barrier.
type Mailbox = Mutex<Vec<(u32, Packet)>>;

/// What one worker hands back for the in-order merge.
struct ShardResult {
    delivered: u64,
    total_latency: u64,
    total_hops: u64,
    latency_samples: u64,
    max_latency: u64,
    peak_queue: usize,
    reroutes: u64,
    unroutable: u64,
    forwarded: u64,
    cycles: u64,
    pool_live: u64,
    board: Option<ShardBoard>,
    events: Vec<BufferedEvent>,
    /// Whole-network per-cycle series; recorded by shard 0 only (from
    /// the shared schedule, counters, and publish slots).
    globals: Option<GlobalTs>,
    /// This shard's per-channel queue-depth series.
    links: Option<LinkTs>,
    /// Cross-shard packets received per cycle (`--shard-stats` only).
    mailbox: Option<Series>,
    /// Deterministic work counters (`SimConfig::profile` only). The
    /// `sim/*` phases sum identically across any shard count because
    /// the sharded engine services exactly the channels the serial
    /// loop would; `shard/*` phases are gated on `shard_telemetry`.
    prof: ProfCounters,
}

/// Shard owning channel `ch` under boundaries `chan_lo` (last entry =
/// total channels; repeated entries denote empty shards).
fn shard_of(chan_lo: &[usize], ch: usize) -> usize {
    chan_lo.partition_point(|&c| c <= ch) - 1
}

/// Node-aligned shard boundaries balancing *channels* (not nodes) across
/// `s` workers: `node_lo[k]` is the first node whose channel offset
/// reaches `k/s` of the channel total.
fn shard_boundaries(offsets: &[usize], n: usize, s: usize) -> Vec<usize> {
    let num_channels = offsets[n];
    let mut node_lo = vec![0usize; s + 1];
    node_lo[s] = n;
    for (k, lo) in node_lo.iter_mut().enumerate().take(s).skip(1) {
        let target = k * num_channels / s;
        *lo = offsets.partition_point(|&o| o < target).min(n);
    }
    node_lo
}

/// Layout-generic shard boundaries. Under the uniform arithmetic layout
/// the CSR `partition_point` degenerates to `ceil(target / degree)`, so
/// both layouts cut the channel space at identical node-aligned points —
/// a prerequisite for implicit-mode parallel runs matching explicit ones
/// byte for byte.
fn shard_boundaries_layout(layout: &ChanLayout<'_>, n: usize, s: usize) -> Vec<usize> {
    match layout {
        ChanLayout::Csr { offsets, .. } => shard_boundaries(offsets, n, s),
        ChanLayout::Uniform { degree, .. } => {
            let num_channels = n * degree;
            let mut node_lo = vec![0usize; s + 1];
            node_lo[s] = n;
            for (k, lo) in node_lo.iter_mut().enumerate().take(s).skip(1) {
                let target = k * num_channels / s;
                // First v with v * degree >= target, capped at n —
                // exactly `offsets.partition_point(|&o| o < target)` on
                // the arithmetic offsets `v * degree`.
                *lo = target.div_ceil(*degree).min(n);
            }
            node_lo
        }
    }
}

/// The sharded parallel engine behind [`SimConfig::with_threads`].
/// `faulted` selects flight semantics: empty route paths are counted as
/// unroutable (with drop events), and `sim.reroutes`/`sim.unroutable`
/// counters are emitted on the telemetry handle. `routes` is either a
/// single shared table (static plan) or a per-injection churn snapshot
/// compiled ahead of the run — both are read-only here, which keeps the
/// determinism argument untouched by fault churn.
// analyze: hot(sharded cycle loop is the perf-gated engine; see BENCH_parallel.json)
pub(crate) fn run_sharded(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: &SimConfig,
    routes: RouteSrc<'_>,
    faulted: bool,
) -> SimStats {
    let layout = ChanLayout::new(topo, cfg.implicit);
    let n = topo.num_nodes();
    let sparse = cfg.implicit || topo.explicit_graph().is_none();
    let s = cfg.threads.min(n.max(1)).max(1);

    let node_lo = shard_boundaries_layout(&layout, n, s);
    let chan_lo: Vec<usize> = node_lo
        .iter()
        .map(|&v| layout.node_first_channel(v))
        .collect();

    let tel = cfg.telemetry.as_ref();
    let with_board = tel.is_some();
    let buffer_events = tel.is_some_and(Telemetry::trace_enabled);
    // Dense endpoint table: O(channels), needed only by the telemetry
    // merge and trace paths — skipped entirely on telemetry-off runs so
    // implicit-mode memory stays bounded by active traffic.
    let ends: Vec<(u32, u32)> = if with_board {
        layout.endpoints()
    } else {
        Vec::new()
    };

    let total = injections.len() as u64;
    let barrier = Barrier::new(s);
    // mailboxes[sender][receiver]: written by one worker in phase A,
    // drained by one worker in phase B, with a barrier in between.
    let mailboxes: Vec<Vec<Mailbox>> = (0..s)
        .map(|_| (0..s).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let consumed = AtomicU64::new(0); // injections taken off the schedule
    let net_in = AtomicU64::new(0); // packets that entered a queue
    let net_out = AtomicU64::new(0); // routed packets delivered

    // Time-series plumbing: per-shard publish slots written in phase A
    // and read by shard 0 between the barriers, plus monotone totals for
    // the fault-routing series. All idle when no cadence is configured.
    let ts_cfg = tel.and_then(|t| t.timeseries_config());
    let pub_peak: Vec<AtomicU64> = (0..s).map(|_| AtomicU64::new(0)).collect();
    let pub_active: Vec<AtomicU64> = (0..s).map(|_| AtomicU64::new(0)).collect();
    let reroutes_total = AtomicU64::new(0);
    let unroutable_total = AtomicU64::new(0);

    let mut results: Vec<ShardResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..s)
            .map(|k| {
                let (layout, ends) = (&layout, &ends);
                let (node_lo, chan_lo) = (&node_lo, &chan_lo);
                let (barrier, mailboxes) = (&barrier, &mailboxes);
                let (consumed, net_in, net_out) = (&consumed, &net_in, &net_out);
                let (pub_peak, pub_active) = (&pub_peak, &pub_active);
                let (reroutes_total, unroutable_total) = (&reroutes_total, &unroutable_total);
                scope.spawn(move || {
                    run_shard(ShardCtx {
                        k,
                        layout,
                        sparse,
                        routes,
                        injections,
                        cfg,
                        ends,
                        node_lo,
                        chan_lo,
                        barrier,
                        mailboxes,
                        consumed,
                        net_in,
                        net_out,
                        total,
                        with_board,
                        buffer_events,
                        faulted,
                        ts_cfg,
                        pub_peak,
                        pub_active,
                        reroutes_total,
                        unroutable_total,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().expect(
                    "invariant: shard workers never panic (any panic here is a bug to surface)",
                )
            })
            .collect()
    });

    // ---- in-order merge (shard index order, exact integer arithmetic) ----
    let mut stats = SimStats {
        offered: total,
        ..Default::default()
    };
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut reroutes = 0u64;
    let mut unroutable = 0u64;
    let mut in_flight = 0u64;
    let mut prof = ProfCounters::default();
    for r in &results {
        prof.absorb(&r.prof);
        stats.delivered += r.delivered;
        stats.max_latency = stats.max_latency.max(r.max_latency);
        stats.peak_queue = stats.peak_queue.max(r.peak_queue);
        stats.cycles = stats.cycles.max(r.cycles);
        total_latency += r.total_latency;
        total_hops += r.total_hops;
        latency_samples += r.latency_samples;
        reroutes += r.reroutes;
        unroutable += r.unroutable;
        in_flight += r.pool_live;
    }
    let consumed_final = consumed.load(Ordering::SeqCst);
    debug_assert_eq!(
        in_flight,
        net_in.load(Ordering::SeqCst) - net_out.load(Ordering::SeqCst),
        "pool residents equal net in-flight"
    );
    stats.stranded = unroutable + in_flight + (total - consumed_final);
    if latency_samples > 0 {
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_latency = total_latency as f64 / latency_samples as f64;
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_hops = total_hops as f64 / latency_samples as f64;
    }
    debug_assert_eq!(
        stats.delivered + stats.stranded,
        stats.offered,
        "packet conservation"
    );

    if let Some(t) = tel {
        if cfg.profile {
            prof.finish(
                t,
                Some((routes.num_pairs() as u64, routes.total_route_nodes() as u64)),
            );
        }
        if buffer_events {
            // Stable sort on (cycle, phase, key): the key is unique
            // across shards, and equal keys only occur within one shard
            // (injected-then-delivered pairs), whose local order the
            // stable sort preserves — exactly the serial emission order.
            let mut all: Vec<BufferedEvent> = results
                .iter()
                .flat_map(|r| r.events.iter().cloned())
                .collect();
            // analyze: allow(unstable-order, stable sort; ties share a shard and keep serial emission order)
            all.sort_by_key(|e| (e.0, e.1, e.2));
            for (_, _, _, ev) in all {
                t.event(|| ev);
            }
        }
        if faulted {
            t.counter("sim.reroutes").add(reroutes);
            t.counter("sim.unroutable").add(unroutable);
        }
        t.counter("sim.offered").add(stats.offered);
        t.counter("sim.delivered").add(stats.delivered);
        t.counter("sim.stranded").add(stats.stranded);
        t.counter(CYCLES_COUNTER).add(stats.cycles);
        let mut ls = LinkStats::new();
        for (k, r) in results.iter().enumerate() {
            let Some(b) = &r.board else { continue };
            t.merge_histogram("sim.latency", &b.latency);
            t.merge_histogram("sim.hops", &b.hops);
            let base = chan_lo[k];
            for i in 0..b.fwd.len() {
                let (from, to) = ends[base + i];
                if b.fwd[i] > 0 {
                    ls.record_forward(from, to, b.fwd[i]);
                }
                if b.busy[i] > 0 {
                    ls.record_busy(from, to, b.busy[i]);
                }
                if b.peak[i] > 0 {
                    ls.observe_queue(from, to, b.peak[i]);
                }
            }
        }
        if with_board {
            t.merge_links(&ls);
        }
        if cfg.shard_telemetry {
            for (k, r) in results.iter().enumerate() {
                // analyze: allow(alloc-in-hot, once-per-run shard telemetry merge, not cycle work)
                t.counter(&format!("sim.shard.{k}.delivered"))
                    .add(r.delivered);
                // analyze: allow(alloc-in-hot, once-per-run shard telemetry merge, not cycle work)
                t.counter(&format!("sim.shard.{k}.forwarded"))
                    .add(r.forwarded);
                // analyze: allow(alloc-in-hot, once-per-run shard telemetry merge, not cycle work)
                let span = t.span_start(&format!("shard {k}"), None, 0);
                // analyze: allow(alloc-in-hot, once-per-run shard telemetry merge, not cycle work)
                t.span_attr(span, "nodes", format!("{}..{}", node_lo[k], node_lo[k + 1]));
                t.span_attr(
                    span,
                    "channels",
                    // analyze: allow(alloc-in-hot, once-per-run shard telemetry merge, not cycle work)
                    format!("{}..{}", chan_lo[k], chan_lo[k + 1]),
                );
                t.span_attr(span, "delivered", r.delivered.to_string());
                t.span_end(span, stats.cycles);
            }
        }
        // Merge the time-series recorders (the final store is
        // name-ordered, so shard order is immaterial — done in shard
        // order anyway for clarity), then run detection exactly once.
        for (k, r) in results.iter_mut().enumerate() {
            if let Some(lt) = r.links.take() {
                lt.merge_into(t, &ends);
            }
            if let Some(gt) = r.globals.take() {
                gt.merge_into(t);
            }
            if let Some(mb) = r.mailbox.take() {
                // analyze: allow(alloc-in-hot, once-per-run shard telemetry merge, not cycle work)
                t.merge_series(&format!("sim.shard.{k}.mailbox"), mb);
            }
        }
        t.detect_congestion(stats.cycles);
    }
    stats
}

/// Everything one worker needs, bundled to keep the spawn site readable.
struct ShardCtx<'a> {
    k: usize,
    layout: &'a ChanLayout<'a>,
    /// Use the lazily materialised sparse channel store.
    sparse: bool,
    routes: RouteSrc<'a>,
    injections: &'a [Injection],
    cfg: &'a SimConfig,
    ends: &'a [(u32, u32)],
    node_lo: &'a [usize],
    chan_lo: &'a [usize],
    barrier: &'a Barrier,
    mailboxes: &'a [Vec<Mailbox>],
    consumed: &'a AtomicU64,
    net_in: &'a AtomicU64,
    net_out: &'a AtomicU64,
    total: u64,
    with_board: bool,
    buffer_events: bool,
    faulted: bool,
    ts_cfg: Option<TsConfig>,
    pub_peak: &'a [AtomicU64],
    pub_active: &'a [AtomicU64],
    reroutes_total: &'a AtomicU64,
    unroutable_total: &'a AtomicU64,
}

fn run_shard(ctx: ShardCtx<'_>) -> ShardResult {
    let ShardCtx {
        k,
        layout,
        sparse,
        routes,
        injections,
        cfg,
        ends,
        node_lo,
        chan_lo,
        barrier,
        mailboxes,
        consumed,
        net_in,
        net_out,
        total,
        with_board,
        buffer_events,
        faulted,
        ts_cfg,
        pub_peak,
        pub_active,
        reroutes_total,
        unroutable_total,
    } = ctx;
    let s = chan_lo.len() - 1;
    let base = chan_lo[k];
    let width = chan_lo[k + 1] - base;

    let channel_of = |u: NodeId, v: NodeId| -> usize { layout.channel_of(u, v) };

    // My injections: those sourced in my node range, in global id order.
    let my_inj: Vec<usize> = injections
        .iter()
        .enumerate()
        .filter(|(_, inj)| node_lo[k] <= inj.src && inj.src < node_lo[k + 1])
        .map(|(i, _)| i)
        .collect();
    let mut next_inj = 0usize;

    // Local per-channel store, indexed by `ch - base`.
    let mut queues: ChanQueues<u32> = ChanQueues::new(width, sparse, false);
    let mut pool: PacketPool<Packet> = PacketPool::new();
    let mut active: Vec<usize> = Vec::new(); // global channel ids, own range
    let mut board = with_board.then(|| ShardBoard {
        latency: Histogram::new(),
        hops: Histogram::new(),
        fwd: vec![0; width],
        busy: vec![0; width],
        peak: vec![0; width],
    });
    let mut events: Vec<BufferedEvent> = Vec::new();
    let profiling = cfg.profile && with_board;
    let mut prof = ProfCounters::default();

    // Link-depth series over this shard's own (disjoint) channel range;
    // shard 0 additionally records the whole-network series — it derives
    // the per-cycle globals from the shared injection schedule, the
    // monotone counters, and the publish slots, all stable between the
    // barriers.
    let mut ts_links = ts_cfg.map(|c| LinkTs::new(c, base, width));
    let mut globals = ts_cfg.filter(|_| k == 0).map(|c| GlobalTs::new(c, faulted));
    let mut mailbox_series = ts_cfg.filter(|_| cfg.shard_telemetry).map(Series::new);
    let mut all_next = 0usize; // shard 0's cursor over the full schedule
    let mut prev_out = 0u64;
    let mut prev_reroutes = 0u64;
    let mut prev_unroutable = 0u64;

    let mut delivered = 0u64;
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut max_latency = 0u64;
    let mut peak_queue = 0usize;
    let mut reroutes = 0u64;
    let mut unroutable = 0u64;
    let mut forwarded = 0u64;
    let mut cycle = 0u64;

    let mut local_pending: Vec<(usize, u32)> = Vec::new(); // (dst channel, key)
    let mut outbox: Vec<Vec<(u32, Packet)>> = vec![Vec::new(); s];
    let mut still_active: Vec<usize> = Vec::new();

    while cycle < cfg.max_cycles {
        // ---- phase A: inject + service own channels ----
        let mut consumed_delta = 0u64;
        let mut in_delta = 0u64;
        let mut out_delta = 0u64;
        let reroutes_before = reroutes;
        let unroutable_before = unroutable;
        while next_inj < my_inj.len() && injections[my_inj[next_inj]].at == cycle {
            let idx = my_inj[next_inj];
            let inj = injections[idx];
            let id = idx as u64;
            next_inj += 1;
            consumed_delta += 1;
            if buffer_events {
                events.push((
                    cycle,
                    0,
                    id,
                    Event::PacketInjected {
                        id,
                        src: inj.src as u32,
                        dst: inj.dst as u32,
                        cycle,
                    },
                ));
            }
            let slot = routes
                .slot_for(idx, inj.src, inj.dst)
                .expect("invariant: route table was built from this exact workload");
            let path = routes.path(slot);
            if profiling {
                prof.lookup_inv += 1;
                prof.lookup_work += path.len() as u64;
            }
            if path.is_empty() {
                debug_assert!(faulted, "empty routes only exist under faults");
                unroutable += 1;
                if buffer_events {
                    events.push((
                        cycle,
                        0,
                        id,
                        Event::PacketDropped {
                            id,
                            at: inj.src as u32,
                            cycle,
                        },
                    ));
                }
                continue;
            }
            if path.len() <= 1 {
                delivered += 1;
                if buffer_events {
                    events.push((
                        cycle,
                        0,
                        id,
                        Event::PacketDelivered {
                            id,
                            dst: inj.dst as u32,
                            latency: 0,
                            cycle,
                        },
                    ));
                }
                continue;
            }
            if faulted && routes.detour(slot).is_some() {
                reroutes += 1;
            }
            let ch = channel_of(path[0] as NodeId, path[1] as NodeId);
            debug_assert!(
                base <= ch && ch < chan_lo[k + 1],
                "injection lands in own shard"
            );
            let key = pool.alloc(Packet {
                id,
                route: slot,
                hop: 0,
                injected_at: cycle,
            });
            queues.push_back(ch - base, key);
            if queues.activate(ch - base) {
                active.push(ch);
            }
            in_delta += 1;
        }

        // Canonical ascending order within the shard's disjoint range.
        active.sort_unstable();

        let mut cycle_peak = 0usize;
        for &ch in &active {
            let len = queues.len(ch - base);
            if let Some(b) = board.as_mut() {
                b.peak[ch - base] = b.peak[ch - base].max(len);
            }
            cycle_peak = cycle_peak.max(len);
            if let Some(lt) = ts_links.as_mut() {
                lt.observe(ch, cycle, len as u64);
            }
        }
        peak_queue = peak_queue.max(cycle_peak);
        // Sampled here (post-injection, pre-service) to match the serial
        // loop; `active` is mutated again before the publish below.
        let cycle_active = active.len();

        still_active.clear();
        for &ch in &active {
            if profiling {
                prof.service_inv += 1;
                prof.service_work += queues.len(ch - base) as u64;
            }
            if let Some(key) = queues.pop_front(ch - base) {
                let mut p = *pool.get(key);
                p.hop += 1;
                let path = routes.path(p.route);
                let here = path[p.hop as usize];
                forwarded += 1;
                if let Some(b) = board.as_mut() {
                    b.busy[ch - base] += 1;
                    b.fwd[ch - base] += 1;
                }
                if buffer_events {
                    let (from, to) = ends[ch];
                    events.push((
                        cycle,
                        1,
                        2 * ch as u64,
                        Event::PacketHop {
                            id: p.id,
                            from,
                            to,
                            cycle: cycle + 1,
                        },
                    ));
                }
                if p.hop as usize + 1 == path.len() {
                    let latency = cycle + 1 - p.injected_at;
                    total_latency += latency;
                    total_hops += u64::from(p.hop);
                    latency_samples += 1;
                    max_latency = max_latency.max(latency);
                    delivered += 1;
                    out_delta += 1;
                    pool.free(key);
                    if let Some(b) = board.as_mut() {
                        b.latency.record(latency);
                        b.hops.record(u64::from(p.hop));
                    }
                    if buffer_events {
                        events.push((
                            cycle,
                            1,
                            2 * ch as u64 + 1,
                            Event::PacketDelivered {
                                id: p.id,
                                dst: here,
                                latency,
                                cycle: cycle + 1,
                            },
                        ));
                    }
                } else {
                    let next = path[p.hop as usize + 1];
                    let dst_ch = channel_of(here as NodeId, next as NodeId);
                    let dst_shard = shard_of(chan_lo, dst_ch);
                    if dst_shard == k {
                        *pool.get_mut(key) = p;
                        local_pending.push((dst_ch, key));
                    } else {
                        pool.free(key);
                        outbox[dst_shard].push((dst_ch as u32, p));
                    }
                }
            }
            if queues.len(ch - base) == 0 {
                queues.deactivate(ch - base);
            } else {
                still_active.push(ch);
            }
        }
        std::mem::swap(&mut active, &mut still_active);

        for (dst, out) in outbox.iter_mut().enumerate() {
            if !out.is_empty() {
                mailboxes[k][dst]
                    .lock()
                    .expect("invariant: mailbox mutex unpoisoned (holders never panic)")
                    .append(out);
            }
        }
        if consumed_delta > 0 {
            consumed.fetch_add(consumed_delta, Ordering::SeqCst);
        }
        if in_delta > 0 {
            net_in.fetch_add(in_delta, Ordering::SeqCst);
        }
        if out_delta > 0 {
            net_out.fetch_add(out_delta, Ordering::SeqCst);
        }
        if ts_cfg.is_some() {
            pub_peak[k].store(cycle_peak as u64, Ordering::SeqCst);
            pub_active[k].store(cycle_active as u64, Ordering::SeqCst);
            if faulted {
                if reroutes > reroutes_before {
                    reroutes_total.fetch_add(reroutes - reroutes_before, Ordering::SeqCst);
                }
                if unroutable > unroutable_before {
                    unroutable_total.fetch_add(unroutable - unroutable_before, Ordering::SeqCst);
                }
            }
        }

        barrier.wait();
        if profiling && cfg.shard_telemetry {
            prof.barrier_inv += 1;
            prof.barrier_work += 1;
        }

        // Counters are stable until the next phase A, so every worker
        // computes the same decision here.
        let drained = cfg.stop_when_drained
            && consumed.load(Ordering::SeqCst) == total
            && net_in.load(Ordering::SeqCst) == net_out.load(Ordering::SeqCst);

        // Shard 0 records the whole-network samples for this cycle: the
        // values are exactly what the serial loop sees at its own
        // end-of-cycle recording point (phase A fixed every injection,
        // delivery, and queue peak of the cycle; phase B only moves
        // packets between queues).
        if let Some(gt) = globals.as_mut() {
            let mut injected_now = 0u64;
            let mut self_delivered = 0u64;
            while all_next < injections.len() && injections[all_next].at == cycle {
                let inj = injections[all_next];
                let idx = all_next;
                all_next += 1;
                injected_now += 1;
                let slot = routes
                    .slot_for(idx, inj.src, inj.dst)
                    .expect("invariant: route table was built from this exact workload");
                if routes.path(slot).len() == 1 {
                    self_delivered += 1;
                }
            }
            let out_now = net_out.load(Ordering::SeqCst);
            let in_flight_now = net_in.load(Ordering::SeqCst) - out_now;
            let peak_now = pub_peak
                .iter()
                .map(|a| a.load(Ordering::SeqCst))
                .max()
                .unwrap_or(0);
            let active_now = pub_active.iter().map(|a| a.load(Ordering::SeqCst)).sum();
            gt.record(
                cycle,
                in_flight_now,
                injected_now,
                self_delivered + (out_now - prev_out),
                peak_now,
                active_now,
            );
            prev_out = out_now;
            if faulted {
                let r_now = reroutes_total.load(Ordering::SeqCst);
                let u_now = unroutable_total.load(Ordering::SeqCst);
                gt.record_faults(cycle, r_now - prev_reroutes, u_now - prev_unroutable);
                prev_reroutes = r_now;
                prev_unroutable = u_now;
            }
        }

        // ---- phase B: apply movers in ascending source-channel order ----
        let mut incoming_total = 0u64;
        for (src, sender_row) in mailboxes.iter().enumerate().take(s) {
            if src == k {
                for &(ch, key) in &local_pending {
                    queues.push_back(ch - base, key);
                    if queues.activate(ch - base) {
                        active.push(ch);
                    }
                }
                local_pending.clear();
            } else {
                let mut incoming = std::mem::take(
                    &mut *sender_row[k]
                        .lock()
                        .expect("invariant: mailbox mutex unpoisoned (holders never panic)"),
                );
                incoming_total += incoming.len() as u64;
                for (ch, p) in incoming.drain(..) {
                    let ch = ch as usize;
                    let key = pool.alloc(p);
                    queues.push_back(ch - base, key);
                    if queues.activate(ch - base) {
                        active.push(ch);
                    }
                }
            }
        }
        if profiling && cfg.shard_telemetry {
            prof.mailbox_inv += 1;
            prof.mailbox_work += incoming_total;
        }
        if let Some(mb) = mailbox_series.as_mut() {
            mb.record(cycle, incoming_total);
        }

        barrier.wait();
        if profiling && cfg.shard_telemetry {
            prof.barrier_inv += 1;
            prof.barrier_work += 1;
        }
        cycle += 1;
        if drained {
            break;
        }
    }

    ShardResult {
        delivered,
        total_latency,
        total_hops,
        latency_samples,
        max_latency,
        peak_queue,
        reroutes,
        unroutable,
        forwarded,
        cycles: cycle,
        pool_live: pool.live() as u64,
        board,
        events,
        globals,
        links: ts_links,
        mailbox: mailbox_series,
        prof,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::flight::{run_with_faults, TraceSampling};
    use crate::sim::{channel_offsets, run};
    use crate::topology::{HbRouteOrder, HyperButterflyNet, HypercubeNet};
    use crate::workload;

    #[test]
    fn shard_boundaries_are_node_aligned_and_cover_all_channels() {
        let t = HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap();
        let g = t.graph();
        let offsets = channel_offsets(g);
        let n = g.num_nodes();
        for s in [1, 2, 3, 4, 7, 16] {
            let node_lo = shard_boundaries(&offsets, n, s);
            assert_eq!(node_lo[0], 0);
            assert_eq!(node_lo[s], n);
            assert!(node_lo.windows(2).all(|w| w[0] <= w[1]));
            let chan_lo: Vec<usize> = node_lo.iter().map(|&v| offsets[v]).collect();
            // Every channel belongs to exactly the shard that owns its
            // tail node.
            for ch in [0usize, 1, offsets[n] / 2, offsets[n] - 1] {
                let k = shard_of(&chan_lo, ch);
                assert!(chan_lo[k] <= ch && ch < chan_lo[k + 1]);
            }
        }
    }

    #[test]
    fn sharded_stats_match_serial_on_hb() {
        let t = HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 80, 0.3, 13);
        let serial = run(&t, &traffic, SimConfig::default());
        for threads in [2, 3, 4, 8] {
            let par = run(&t, &traffic, SimConfig::default().with_threads(threads));
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn sharded_faulted_run_matches_serial_including_counters() {
        let t = HypercubeNet::new(4).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 40, 0.4, 5);
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1).add_node(9);
        let serial = run_with_faults(
            &t,
            &traffic,
            SimConfig::default(),
            &plan,
            TraceSampling::Off,
        );
        let tel_s = Telemetry::summary();
        run_with_faults(
            &t,
            &traffic,
            SimConfig::default().with_telemetry(tel_s.clone()),
            &plan,
            TraceSampling::Off,
        );
        let tel_p = Telemetry::summary();
        let par = run_with_faults(
            &t,
            &traffic,
            SimConfig::default()
                .with_telemetry(tel_p.clone())
                .with_threads(4),
            &plan,
            TraceSampling::Off,
        );
        assert_eq!(serial, par);
        assert_eq!(
            tel_s.counter("sim.reroutes").get(),
            tel_p.counter("sim.reroutes").get()
        );
        assert_eq!(
            tel_s.counter("sim.unroutable").get(),
            tel_p.counter("sim.unroutable").get()
        );
        assert_eq!(tel_s.snapshot(), tel_p.snapshot());
    }

    #[test]
    fn sharded_trace_events_match_serial_byte_for_byte() {
        let t = HypercubeNet::new(3).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 30, 0.5, 21);
        let tel_s = Telemetry::with_trace(4096);
        let serial = run(
            &t,
            &traffic,
            SimConfig::default().with_telemetry(tel_s.clone()),
        );
        let tel_p = Telemetry::with_trace(4096);
        let par = run(
            &t,
            &traffic,
            SimConfig::default()
                .with_telemetry(tel_p.clone())
                .with_threads(3),
        );
        assert_eq!(serial, par);
        assert_eq!(tel_s.events(), tel_p.events(), "exact event order");
        assert_eq!(tel_s.snapshot(), tel_p.snapshot());
    }

    #[test]
    fn shard_telemetry_emits_per_shard_counters_and_spans() {
        let t = HypercubeNet::new(4).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 20, 0.3, 3);
        let tel = Telemetry::with_trace(4096);
        let stats = run(
            &t,
            &traffic,
            SimConfig::default()
                .with_telemetry(tel.clone())
                .with_threads(2)
                .with_shard_telemetry(true),
        );
        let per_shard: u64 = (0..2)
            .map(|k| tel.counter(&format!("sim.shard.{k}.delivered")).get())
            .sum();
        assert_eq!(per_shard, stats.delivered);
        let shard_spans: Vec<_> = tel
            .spans()
            .into_iter()
            .filter(|sp| sp.name.starts_with("shard "))
            .collect();
        assert_eq!(shard_spans.len(), 2);
        assert!(shard_spans[0].attr("channels").is_some());
    }

    #[test]
    fn profile_is_identical_serial_vs_sharded() {
        let t = HypercubeNet::new(4).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 60, 0.4, 11);
        let tel_s = Telemetry::summary();
        run(
            &t,
            &traffic,
            SimConfig::default()
                .with_telemetry(tel_s.clone())
                .with_profile(true),
        );
        let prof_s = tel_s.profile();
        assert!(!prof_s.is_empty(), "profiling recorded phases");
        assert!(prof_s.get("sim/route_lookup").is_some());
        assert!(prof_s.get("sim/queue_service").is_some());
        assert!(prof_s.get("sim/route_build").is_some());
        assert!(
            prof_s.get("shard/mailbox_merge").is_none(),
            "shard phases require shard_telemetry"
        );
        for threads in [2, 3, 4] {
            let tel_p = Telemetry::summary();
            run(
                &t,
                &traffic,
                SimConfig::default()
                    .with_telemetry(tel_p.clone())
                    .with_profile(true)
                    .with_threads(threads),
            );
            assert_eq!(prof_s, tel_p.profile(), "threads={threads}");
            assert_eq!(tel_s.snapshot(), tel_p.snapshot(), "threads={threads}");
        }
    }

    #[test]
    fn shard_phases_appear_only_under_shard_telemetry() {
        let t = HypercubeNet::new(4).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 30, 0.4, 7);
        let tel = Telemetry::summary();
        run(
            &t,
            &traffic,
            SimConfig::default()
                .with_telemetry(tel.clone())
                .with_profile(true)
                .with_shard_telemetry(true)
                .with_threads(2),
        );
        let prof = tel.profile();
        let barrier = prof
            .get("shard/barrier_epoch")
            .expect("barrier phase recorded under shard telemetry");
        // Two barriers per cycle per shard: invocations = 2 * shards * cycles.
        assert!(barrier.invocations > 0);
        assert!(prof.get("shard/mailbox_merge").is_some());
    }

    #[test]
    fn more_threads_than_nodes_degrades_gracefully() {
        let t = HypercubeNet::new(2).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 10, 0.8, 1);
        let serial = run(&t, &traffic, SimConfig::default());
        let par = run(&t, &traffic, SimConfig::default().with_threads(64));
        assert_eq!(serial, par);
    }

    #[test]
    fn cycle_limit_strands_identically_in_parallel() {
        let t = HypercubeNet::new(4).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 50, 0.6, 17);
        for limit in [0, 1, 3, 7] {
            let serial = run(&t, &traffic, SimConfig::bounded(limit));
            let par = run(&t, &traffic, SimConfig::bounded(limit).with_threads(4));
            assert_eq!(serial, par, "limit {limit}");
        }
    }
}
