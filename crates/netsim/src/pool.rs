//! Slab packet pool: stable `u32` keys into a reusable arena, so the
//! hot per-channel `VecDeque`s move 4-byte keys instead of packet
//! structs and the steady state performs **zero** per-hop allocations —
//! freed slots are recycled in LIFO order, and all storage is reused
//! across cycles.
//!
//! The simulators allocate one slot per injected packet and free it at
//! delivery; the live high-water mark bounds the arena, so a drained run
//! ends with `live() == 0` and every slot on the free list.

/// A slab allocator with stable `u32` keys and a LIFO free list.
#[derive(Clone, Debug, Default)]
pub struct PacketPool<T> {
    slots: Vec<T>,
    free: Vec<u32>,
    live: usize,
}

impl<T> PacketPool<T> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty pool with room for `cap` packets before reallocating.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Stores `value`, reusing a freed slot when one exists.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` slots would be live at once.
    pub fn alloc(&mut self, value: T) -> u32 {
        self.live += 1;
        if let Some(key) = self.free.pop() {
            self.slots[key as usize] = value;
            return key;
        }
        let key = u32::try_from(self.slots.len()).expect("invariant: fewer than 2^32 live packets");
        self.slots.push(value);
        key
    }

    /// Releases `key` for reuse. The slot's contents stay in place until
    /// overwritten by a later [`Self::alloc`]; reading a freed key is a
    /// logic error the pool does not detect (keys are not generational).
    pub fn free(&mut self, key: u32) {
        debug_assert!((key as usize) < self.slots.len(), "freeing unknown key");
        self.live -= 1;
        self.free.push(key);
    }

    /// Shared access to the packet behind `key`.
    #[inline]
    #[must_use]
    pub fn get(&self, key: u32) -> &T {
        &self.slots[key as usize]
    }

    /// Exclusive access to the packet behind `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u32) -> &mut T {
        &mut self.slots[key as usize]
    }

    /// Live (allocated and not yet freed) packet count.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live high-water mark).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<T>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_recycles_slots() {
        let mut p = PacketPool::new();
        let a = p.alloc("a");
        let b = p.alloc("b");
        assert_eq!((*p.get(a), *p.get(b)), ("a", "b"));
        assert_eq!(p.live(), 2);
        p.free(a);
        assert_eq!(p.live(), 1);
        // LIFO reuse: the freed slot comes back, capacity stays put.
        let c = p.alloc("c");
        assert_eq!(c, a);
        assert_eq!(*p.get(c), "c");
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn capacity_tracks_high_water_mark_not_live() {
        let mut p = PacketPool::with_capacity(4);
        let keys: Vec<u32> = (0..10).map(|i| p.alloc(i)).collect();
        assert_eq!(p.capacity(), 10);
        for &k in &keys {
            p.free(k);
        }
        assert_eq!(p.live(), 0);
        assert_eq!(p.capacity(), 10);
        // Re-filling 10 packets allocates nothing new.
        for i in 0..10 {
            p.alloc(i);
        }
        assert_eq!(p.capacity(), 10);
        assert!(p.heap_bytes() >= 10 * std::mem::size_of::<i32>());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut p = PacketPool::new();
        let k = p.alloc(41);
        *p.get_mut(k) += 1;
        assert_eq!(*p.get(k), 42);
    }
}
