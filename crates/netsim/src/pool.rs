//! Slab packet pool: stable `u32` keys into a reusable arena, so the
//! hot per-channel `VecDeque`s move 4-byte keys instead of packet
//! structs and the steady state performs **zero** per-hop allocations —
//! freed slots are recycled in LIFO order, and all storage is reused
//! across cycles.
//!
//! The simulators allocate one slot per injected packet and free it at
//! delivery; the live high-water mark bounds the arena, so a drained run
//! ends with `live() == 0` and every slot on the free list.

/// A slab allocator with stable `u32` keys and a LIFO free list.
#[derive(Clone, Debug, Default)]
pub struct PacketPool<T> {
    slots: Vec<T>,
    free: Vec<u32>,
    live: usize,
}

impl<T> PacketPool<T> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty pool with room for `cap` packets before reallocating.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Stores `value`, reusing a freed slot when one exists.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` slots would be live at once.
    pub fn alloc(&mut self, value: T) -> u32 {
        self.live += 1;
        if let Some(key) = self.free.pop() {
            self.slots[key as usize] = value;
            return key;
        }
        let key = u32::try_from(self.slots.len()).expect("invariant: fewer than 2^32 live packets");
        self.slots.push(value);
        key
    }

    /// Releases `key` for reuse. The slot's contents stay in place until
    /// overwritten by a later [`Self::alloc`]; reading a freed key is a
    /// logic error the pool does not detect (keys are not generational).
    /// Freeing a key twice *is* detected in debug builds — under fault
    /// churn the engines free at both delivery and admission refusal,
    /// and those paths must stay disjoint.
    pub fn free(&mut self, key: u32) {
        debug_assert!((key as usize) < self.slots.len(), "freeing unknown key");
        debug_assert!(
            !self.free.contains(&key),
            "double free of pool key {key}: already on the free list"
        );
        self.live -= 1;
        self.free.push(key);
    }

    /// Shared access to the packet behind `key`.
    #[inline]
    #[must_use]
    pub fn get(&self, key: u32) -> &T {
        &self.slots[key as usize]
    }

    /// Exclusive access to the packet behind `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u32) -> &mut T {
        &mut self.slots[key as usize]
    }

    /// Live (allocated and not yet freed) packet count.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live high-water mark).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<T>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

/// One lazily materialised per-channel record: the FIFO queue plus the
/// bookkeeping the frontier engines need (worklist membership and the
/// bounded runner's same-cycle credit count).
#[derive(Clone, Debug, Default)]
pub struct ChannelRec<T> {
    /// The channel's FIFO queue.
    pub queue: std::collections::VecDeque<T>,
    /// Whether the channel currently sits on the active worklist.
    pub active: bool,
    /// Packets admitted toward this channel in the current cycle
    /// (bounded runner's conservative credit count).
    pub incoming: usize,
}

/// Sparse channel-keyed store for the frontier engines: records are
/// materialised on first touch and recycled (LIFO, capacity retained)
/// once a channel is idle again, so a simulation over `C` channels with
/// `k` concurrently busy ones holds `O(k)` records — never `O(C)`. The
/// index is a sorted `(channel, slot)` vector (binary-search lookup,
/// memmove insert), which stays allocation-free at steady state once the
/// live high-water mark is reached.
#[derive(Clone, Debug, Default)]
pub struct ChannelMap<T> {
    /// Sorted by channel id; values are slots into `slabs`.
    index: Vec<(usize, u32)>,
    slabs: Vec<ChannelRec<T>>,
    free: Vec<u32>,
    peak_live: usize,
}

impl<T> ChannelMap<T> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            index: Vec::new(),
            slabs: Vec::new(),
            free: Vec::new(),
            peak_live: 0,
        }
    }

    /// The record for `ch`, if materialised.
    // analyze: hot(per-packet channel lookup on the frontier engine's cycle path)
    #[inline]
    #[must_use]
    pub fn get(&self, ch: usize) -> Option<&ChannelRec<T>> {
        self.index
            .binary_search_by_key(&ch, |&(c, _)| c)
            .ok()
            .map(|i| &self.slabs[self.index[i].1 as usize])
    }

    /// Mutable access to the record for `ch`, if materialised.
    // analyze: hot(per-packet channel lookup on the frontier engine's cycle path)
    #[inline]
    pub fn get_mut(&mut self, ch: usize) -> Option<&mut ChannelRec<T>> {
        match self.index.binary_search_by_key(&ch, |&(c, _)| c) {
            Ok(i) => Some(&mut self.slabs[self.index[i].1 as usize]),
            Err(_) => None,
        }
    }

    /// The record for `ch`, materialising an empty one on first touch
    /// (recycling a retired record — and its queue capacity — when one
    /// is free).
    // analyze: hot(steady state recycles retired records; slab growth is first-touch only)
    pub fn ensure(&mut self, ch: usize) -> &mut ChannelRec<T> {
        let at = match self.index.binary_search_by_key(&ch, |&(c, _)| c) {
            Ok(i) => return &mut self.slabs[self.index[i].1 as usize],
            Err(at) => at,
        };
        let slot = if let Some(s) = self.free.pop() {
            s
        } else {
            let s = u32::try_from(self.slabs.len())
                .expect("invariant: fewer than 2^32 live channel records");
            self.slabs.push(ChannelRec {
                queue: std::collections::VecDeque::new(),
                active: false,
                incoming: 0,
            });
            s
        };
        self.index.insert(at, (ch, slot));
        self.peak_live = self.peak_live.max(self.index.len());
        &mut self.slabs[slot as usize]
    }

    /// Retires `ch`'s record when it is fully idle (empty queue, off the
    /// worklist, no pending credit count); its storage goes back on the
    /// free list with queue capacity intact. No-op otherwise.
    // analyze: hot(runs once per drained channel per cycle; must not allocate)
    pub fn release_if_idle(&mut self, ch: usize) {
        let Ok(i) = self.index.binary_search_by_key(&ch, |&(c, _)| c) else {
            return;
        };
        let slot = self.index[i].1;
        let rec = &self.slabs[slot as usize];
        if rec.queue.is_empty() && !rec.active && rec.incoming == 0 {
            self.index.remove(i);
            self.free.push(slot);
        }
    }

    /// Live (materialised) channel records.
    #[must_use]
    pub fn live(&self) -> usize {
        self.index.len()
    }

    /// High-water mark of concurrently live records — the memory bound
    /// the frontier engine promises: proportional to busy channels, not
    /// to the topology's channel count.
    #[must_use]
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Approximate heap footprint in bytes (index + slab spines + queue
    /// buffers).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.index.capacity() * size_of::<(usize, u32)>()
            + self.free.capacity() * size_of::<u32>()
            + self.slabs.capacity() * size_of::<ChannelRec<T>>()
            + self
                .slabs
                .iter()
                .map(|r| r.queue.capacity() * size_of::<T>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_recycles_slots() {
        let mut p = PacketPool::new();
        let a = p.alloc("a");
        let b = p.alloc("b");
        assert_eq!((*p.get(a), *p.get(b)), ("a", "b"));
        assert_eq!(p.live(), 2);
        p.free(a);
        assert_eq!(p.live(), 1);
        // LIFO reuse: the freed slot comes back, capacity stays put.
        let c = p.alloc("c");
        assert_eq!(c, a);
        assert_eq!(*p.get(c), "c");
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn capacity_tracks_high_water_mark_not_live() {
        let mut p = PacketPool::with_capacity(4);
        let keys: Vec<u32> = (0..10).map(|i| p.alloc(i)).collect();
        assert_eq!(p.capacity(), 10);
        for &k in &keys {
            p.free(k);
        }
        assert_eq!(p.live(), 0);
        assert_eq!(p.capacity(), 10);
        // Re-filling 10 packets allocates nothing new.
        for i in 0..10 {
            p.alloc(i);
        }
        assert_eq!(p.capacity(), 10);
        assert!(p.heap_bytes() >= 10 * std::mem::size_of::<i32>());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free of pool key")]
    fn double_free_is_rejected_in_debug_builds() {
        let mut p = PacketPool::new();
        let a = p.alloc("a");
        p.free(a);
        p.free(a);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut p = PacketPool::new();
        let k = p.alloc(41);
        *p.get_mut(k) += 1;
        assert_eq!(*p.get(k), 42);
    }

    #[test]
    fn channel_map_materialises_and_recycles_records() {
        let mut m: ChannelMap<u32> = ChannelMap::new();
        assert!(m.get(7).is_none());
        m.ensure(7).queue.push_back(1);
        m.ensure(3).queue.push_back(2);
        assert_eq!(m.live(), 2);
        assert_eq!(m.get(7).unwrap().queue.front(), Some(&1));
        // Busy or flagged records survive release attempts.
        m.release_if_idle(7);
        assert_eq!(m.live(), 2);
        m.get_mut(7).unwrap().queue.pop_front();
        m.get_mut(7).unwrap().active = true;
        m.release_if_idle(7);
        assert_eq!(m.live(), 2);
        m.get_mut(7).unwrap().active = false;
        m.release_if_idle(7);
        assert_eq!(m.live(), 1);
        // The retired record is recycled for the next fresh channel and
        // the high-water mark tracks concurrency, not distinct channels.
        m.ensure(9);
        assert_eq!(m.live(), 2);
        assert_eq!(m.peak_live(), 2);
        assert!(m.heap_bytes() > 0);
    }

    #[test]
    fn channel_map_index_stays_sorted_under_churn() {
        let mut m: ChannelMap<u32> = ChannelMap::new();
        for ch in [90usize, 4, 57, 23, 88, 1] {
            m.ensure(ch).queue.push_back(ch as u32);
        }
        for ch in [4usize, 88] {
            m.get_mut(ch).unwrap().queue.pop_front();
            m.release_if_idle(ch);
        }
        for ch in [1usize, 23, 57, 90] {
            assert_eq!(m.get(ch).unwrap().queue.front(), Some(&(ch as u32)));
        }
        assert!(m.get(4).is_none());
        assert!(m.get(88).is_none());
        assert_eq!(m.live(), 4);
        assert_eq!(m.peak_live(), 6);
    }
}
