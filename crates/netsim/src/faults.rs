//! Fault-injection experiments (paper Corollary 1 / Remark 10, measured).
//!
//! The claims under test:
//!
//! * `HB(m, n)` stays connected under **any** fault set of size
//!   `<= m + 3` (it is `m + 4`-connected), while `HD(m, n)` can be
//!   disconnected by `m + 2` faults;
//! * under random faults, the probability of disconnection and of pair
//!   unreachability grows earlier for the less-connected topology;
//! * the Theorem-5 family router keeps delivering at the maximal
//!   allowable fault count.

use hb_graphs::{traverse, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Why a link is unusable — the interned, `Copy` form of detour
/// attribution. Route tables and snapshots store this 2-word value
/// instead of an owned `String`; rendering via `Display` reproduces the
/// exact strings [`FaultPlan::link_fault_reason`] has always emitted, so
/// trace attributes stay byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultReason {
    /// The named node is down (taking every incident link with it).
    Node(u32),
    /// The undirected link `{u, v}` is cut; stored normalized `u <= v`.
    Link(u32, u32),
    /// Like [`FaultReason::Node`], attributed to the [`FaultTimeline`]
    /// event (by index) that injected the fault mid-run. The index is
    /// `u16` so the whole enum still fits the 2-word detour budget.
    NodeAt(u32, u16),
    /// Like [`FaultReason::Link`], attributed to a timeline event.
    LinkAt(u32, u32, u16),
}

impl FaultReason {
    /// The timeline event index that caused this fault, when the fault
    /// was injected mid-run by a [`FaultTimeline`] (static-plan faults
    /// have no event).
    pub fn event(&self) -> Option<u16> {
        match *self {
            FaultReason::Node(_) | FaultReason::Link(_, _) => None,
            FaultReason::NodeAt(_, e) | FaultReason::LinkAt(_, _, e) => Some(e),
        }
    }
}

impl std::fmt::Display for FaultReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultReason::Node(v) => write!(f, "node {v} faulty"),
            FaultReason::Link(u, v) => write!(f, "link {u}-{v} faulty"),
            FaultReason::NodeAt(v, e) => write!(f, "node {v} faulty (event {e})"),
            FaultReason::LinkAt(u, v, e) => write!(f, "link {u}-{v} faulty (event {e})"),
        }
    }
}

/// A static set of failed nodes and links, the per-packet counterpart of
/// the campaign-level trials below: [`crate::flight::run_with_faults`]
/// routes individual packets *around* a `FaultPlan` while the flight
/// recorder attributes each detour to the fault that caused it.
///
/// Links are stored undirected (normalized to `(min, max)`); a faulty
/// node implies every incident link is faulty, so routing only ever needs
/// the link test plus the endpoint test.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    nodes: BTreeSet<NodeId>,
    links: BTreeSet<(NodeId, NodeId)>,
    /// Which [`FaultTimeline`] event (by index) faulted each node, for
    /// mid-run faults only — statically-planned faults carry no
    /// attribution. Part of plan equality: a plan whose faults were
    /// injected by events is *not* interchangeable with a static plan
    /// of the same sets, because detour attribution differs.
    node_events: BTreeMap<NodeId, u16>,
    /// Which timeline event faulted each link (normalized key).
    link_events: BTreeMap<(NodeId, NodeId), u16>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks node `v` (and implicitly all its links) as faulty.
    pub fn add_node(&mut self, v: NodeId) -> &mut Self {
        self.nodes.insert(v);
        self
    }

    /// Marks the undirected link `{u, v}` as faulty.
    pub fn add_link(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.links.insert((u.min(v), u.max(v)));
        self
    }

    /// Marks node `v` faulty and attributes the fault to timeline event
    /// `event`, so detours around it render as
    /// `node {v} faulty (event {event})`.
    pub fn add_node_at(&mut self, v: NodeId, event: u16) -> &mut Self {
        self.nodes.insert(v);
        self.node_events.insert(v, event);
        self
    }

    /// Marks the undirected link `{u, v}` faulty, attributed to
    /// timeline event `event`.
    pub fn add_link_at(&mut self, u: NodeId, v: NodeId, event: u16) -> &mut Self {
        let key = (u.min(v), u.max(v));
        self.links.insert(key);
        self.link_events.insert(key, event);
        self
    }

    /// Repairs node `v`: clears the fault and any event attribution.
    /// A no-op when `v` is healthy.
    pub fn remove_node(&mut self, v: NodeId) -> &mut Self {
        self.nodes.remove(&v);
        self.node_events.remove(&v);
        self
    }

    /// Repairs the undirected link `{u, v}`. A no-op when healthy.
    /// Does **not** resurrect links lost to a node fault — those come
    /// back only when the node itself is repaired.
    pub fn remove_link(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        let key = (u.min(v), u.max(v));
        self.links.remove(&key);
        self.link_events.remove(&key);
        self
    }

    /// A plan from node and link lists.
    pub fn from_sets(
        nodes: impl IntoIterator<Item = NodeId>,
        links: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let mut p = Self::new();
        for v in nodes {
            p.add_node(v);
        }
        for (u, v) in links {
            p.add_link(u, v);
        }
        p
    }

    /// Whether nothing is faulty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }

    /// Faulty nodes, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Faulty links as normalized `(min, max)` pairs, ascending.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.links.iter().copied()
    }

    /// Whether node `v` is faulty.
    pub fn is_node_faulty(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Whether the link `{u, v}` is unusable: explicitly cut, or an
    /// endpoint is down.
    pub fn is_link_faulty(&self, u: NodeId, v: NodeId) -> bool {
        self.links.contains(&(u.min(v), u.max(v)))
            || self.nodes.contains(&u)
            || self.nodes.contains(&v)
    }

    /// Why the link `{u, v}` is unusable, as an interned `Copy` id for
    /// detour attribution (`None` when it is healthy). Classification
    /// priority (head-node fault, then tail-node, then cut link) matches
    /// the historical string form exactly.
    pub fn link_fault_id(&self, u: NodeId, v: NodeId) -> Option<FaultReason> {
        let id = |x: NodeId| u32::try_from(x).expect("invariant: node ids fit u32");
        if self.nodes.contains(&v) {
            Some(match self.node_events.get(&v) {
                Some(&e) => FaultReason::NodeAt(id(v), e),
                None => FaultReason::Node(id(v)),
            })
        } else if self.nodes.contains(&u) {
            Some(match self.node_events.get(&u) {
                Some(&e) => FaultReason::NodeAt(id(u), e),
                None => FaultReason::Node(id(u)),
            })
        } else if self.links.contains(&(u.min(v), u.max(v))) {
            let key = (u.min(v), u.max(v));
            Some(match self.link_events.get(&key) {
                Some(&e) => FaultReason::LinkAt(id(key.0), id(key.1), e),
                None => FaultReason::Link(id(key.0), id(key.1)),
            })
        } else {
            None
        }
    }

    /// Why the link `{u, v}` is unusable, rendered as an owned string
    /// (`None` when it is healthy). Compatibility wrapper over
    /// [`Self::link_fault_id`].
    pub fn link_fault_reason(&self, u: NodeId, v: NodeId) -> Option<String> {
        self.link_fault_id(u, v).map(|r| r.to_string())
    }

    /// Per-node *fault-adjacency* mask over `g`: a node is hot when it
    /// is faulty, neighbors a faulty node, or is an endpoint of a cut
    /// link. A link is **faulty-adjacent** iff either endpoint is hot —
    /// the sampling predicate of the flight recorder ("record every
    /// packet that flies near a fault").
    pub fn hot_nodes(&self, g: &Graph) -> Vec<bool> {
        let mut hot = vec![false; g.num_nodes()];
        for &v in &self.nodes {
            if v < hot.len() {
                hot[v] = true;
                for &w in g.neighbors(v) {
                    hot[w as usize] = true;
                }
            }
        }
        for &(u, v) in &self.links {
            if u < hot.len() {
                hot[u] = true;
            }
            if v < hot.len() {
                hot[v] = true;
            }
        }
        hot
    }

    /// Graph-free counterpart of [`FaultPlan::hot_nodes`]: the same
    /// fault-adjacency predicate as a sparse set holding **only** the
    /// hot node ids — O(faults × degree) memory, independent of
    /// topology size. Neighbor enumeration goes through
    /// [`crate::topology::NetTopology::neighbors_into`], so implicit
    /// million-node topologies never materialise an adjacency array.
    pub fn hot_node_set(&self, topo: &dyn crate::topology::NetTopology) -> BTreeSet<NodeId> {
        let n = topo.num_nodes();
        let mut hot = BTreeSet::new();
        let mut buf = [0 as NodeId; crate::topology::MAX_PRODUCTIVE];
        for &v in &self.nodes {
            if v < n {
                hot.insert(v);
                let k = topo.neighbors_into(v, &mut buf);
                hot.extend(buf[..k].iter().copied());
            }
        }
        for &(u, v) in &self.links {
            if u < n {
                hot.insert(u);
            }
            if v < n {
                hot.insert(v);
            }
        }
        hot
    }
}

/// What one [`FaultTimeline`] event acts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// A node (faulting it takes every incident link down).
    Node(NodeId),
    /// An undirected link; stored normalized `(min, max)`.
    Link(NodeId, NodeId),
}

/// Whether a timeline event injects or heals a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEventKind {
    /// The target becomes faulty at the event's cycle.
    Fault,
    /// The target is repaired at the event's cycle.
    Repair,
}

/// One scheduled fault or repair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation cycle the event takes effect at. Events fire at the
    /// cycle *boundary*: injections at `cycle` already see the event.
    pub cycle: u64,
    /// Fault or repair.
    pub kind: FaultEventKind,
    /// The node or link acted on.
    pub target: FaultTarget,
}

/// A deterministic schedule of mid-run fault and repair events, the
/// dynamic counterpart of a static [`FaultPlan`]. Events are held in
/// nondecreasing cycle order; all events sharing a cycle apply
/// atomically as **one delta**, and [`crate::run_with_timeline`]
/// repairs the route memo incrementally per delta instead of
/// rebuilding it (see `RouteCache::repair`).
///
/// The text form accepted by [`FaultTimeline::parse`] is line-oriented:
///
/// ```text
/// # comments run to end of line
/// @12 fault node 5
/// @12 fault link 0-3
/// @40 repair node 5
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// An empty timeline (equivalent to running with the base plan
    /// alone).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event; panics if `cycle` precedes the last event's
    /// cycle or the timeline is full (event indices are `u16`).
    pub fn push(&mut self, cycle: u64, kind: FaultEventKind, target: FaultTarget) -> &mut Self {
        self.try_push(cycle, kind, target)
            .expect("invariant: timeline events are pushed in nondecreasing cycle order");
        self
    }

    /// Appends an event, rejecting out-of-order cycles and overflow.
    pub fn try_push(
        &mut self,
        cycle: u64,
        kind: FaultEventKind,
        target: FaultTarget,
    ) -> Result<(), String> {
        if let Some(last) = self.events.last() {
            if cycle < last.cycle {
                return Err(format!(
                    "event at cycle {cycle} scheduled after cycle {}: timelines are \
                     nondecreasing",
                    last.cycle
                ));
            }
        }
        if self.events.len() + 1 >= usize::from(u16::MAX) {
            return Err("timeline full: event indices are u16".to_string());
        }
        let target = match target {
            FaultTarget::Link(u, v) => FaultTarget::Link(u.min(v), u.max(v)),
            node => node,
        };
        self.events.push(FaultEvent {
            cycle,
            kind,
            target,
        });
        Ok(())
    }

    /// The events, in schedule order. An event's index in this slice is
    /// the id detour attribution refers to (`… faulty (event {i})`).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses the line-oriented text form: one
    /// `@<cycle> <fault|repair> <node N | link U-V>` per line, `#`
    /// starting a comment, blank lines ignored.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut tl = Self::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or_default().trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| format!("timeline line {}: {msg}", idx + 1);
            let mut parts = line.split_whitespace();
            let cycle = parts
                .next()
                .and_then(|t| t.strip_prefix('@'))
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| at(format!("expected `@<cycle>`, got `{line}`")))?;
            let kind = match parts.next() {
                Some("fault") => FaultEventKind::Fault,
                Some("repair") => FaultEventKind::Repair,
                other => {
                    return Err(at(format!(
                        "expected `fault` or `repair`, got `{}`",
                        other.unwrap_or("")
                    )))
                }
            };
            let target = match (parts.next(), parts.next()) {
                (Some("node"), Some(v)) => {
                    let v = v
                        .parse::<NodeId>()
                        .map_err(|_| at(format!("bad node id `{v}`")))?;
                    FaultTarget::Node(v)
                }
                (Some("link"), Some(uv)) => {
                    let (u, v) = uv
                        .split_once('-')
                        .and_then(|(u, v)| Some((u.parse::<NodeId>().ok()?, v.parse().ok()?)))
                        .ok_or_else(|| at(format!("bad link `{uv}`, expected `U-V`")))?;
                    FaultTarget::Link(u, v)
                }
                _ => {
                    return Err(at(format!(
                        "expected `node <id>` or `link <u>-<v>`, got `{line}`"
                    )))
                }
            };
            if let Some(extra) = parts.next() {
                return Err(at(format!("trailing `{extra}`")));
            }
            tl.try_push(cycle, kind, target).map_err(at)?;
        }
        Ok(tl)
    }
}

/// Outcome of one fault-injection trial campaign at a fixed fault count.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultTrialStats {
    /// Number of injected faults per trial.
    pub faults: usize,
    /// Trials run.
    pub trials: usize,
    /// Trials whose survivor graph stayed connected.
    pub connected: usize,
    /// Fraction of sampled survivor pairs that remained mutually
    /// reachable, averaged over trials.
    pub pair_reachability: f64,
}

/// Samples `trials` random fault sets of the given size and measures
/// survivor connectivity plus reachability of `pair_samples` random
/// survivor pairs per trial. Trials run in parallel.
pub fn random_fault_trials(
    g: &Graph,
    faults: usize,
    trials: usize,
    pair_samples: usize,
    seed: u64,
) -> FaultTrialStats {
    let n = g.num_nodes();
    assert!(faults < n, "cannot fault every node");
    let results: Vec<(bool, f64)> = (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
            let mut keep = vec![true; n];
            let mut placed = 0;
            while placed < faults {
                let f = rng.random_range(0..n);
                if keep[f] {
                    keep[f] = false;
                    placed += 1;
                }
            }
            let blocked: Vec<NodeId> = (0..n).filter(|&v| !keep[v]).collect();
            let connected = traverse::is_connected_avoiding(g, &blocked);
            // Pair reachability (meaningful even when disconnected).
            let survivors: Vec<NodeId> = (0..n).filter(|&v| keep[v]).collect();
            let mut reachable = 0usize;
            let mut sampled = 0usize;
            for _ in 0..pair_samples {
                let a = survivors[rng.random_range(0..survivors.len())];
                let b = survivors[rng.random_range(0..survivors.len())];
                if a == b {
                    continue;
                }
                sampled += 1;
                let tree = traverse::bfs_avoiding(g, a, &blocked);
                if tree.dist[b] != traverse::UNREACHABLE {
                    reachable += 1;
                }
            }
            let ratio = if sampled == 0 {
                1.0
            } else {
                reachable as f64 / sampled as f64
            };
            (connected, ratio)
        })
        .collect();
    let connected = results.iter().filter(|r| r.0).count();
    let pair_reachability = results.iter().map(|r| r.1).sum::<f64>() / trials.max(1) as f64;
    FaultTrialStats {
        faults,
        trials,
        connected,
        pair_reachability,
    }
}

/// Adversarial (targeted) fault trials: each trial picks a random victim
/// node among those of **minimum degree** and faults `faults` of its
/// neighbors (all of them when `faults >= degree`). This is the natural
/// attack on an interconnect: the victim is isolated exactly when the
/// whole neighborhood is faulty, so the disconnection threshold under
/// this campaign *is* the minimum degree — `m + 2` for hyper-deBruijn
/// versus `m + 4` for the hyper-butterfly at the same `m`.
pub fn adversarial_fault_trials(
    g: &Graph,
    faults: usize,
    trials: usize,
    seed: u64,
) -> FaultTrialStats {
    let n = g.num_nodes();
    let min_deg = (0..n)
        .map(|v| g.degree(v))
        .min()
        .expect("invariant: topologies have at least one node");
    let victims: Vec<NodeId> = (0..n).filter(|&v| g.degree(v) == min_deg).collect();
    let results: Vec<bool> = (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x51ED_270B));
            let victim = victims[rng.random_range(0..victims.len())];
            let mut nbrs: Vec<NodeId> = g.neighbors(victim).iter().map(|&w| w as usize).collect();
            // Random subset of the neighborhood of the requested size.
            for i in (1..nbrs.len()).rev() {
                let j = rng.random_range(0..=i);
                nbrs.swap(i, j);
            }
            nbrs.truncate(faults.min(nbrs.len()));
            traverse::is_connected_avoiding(g, &nbrs)
        })
        .collect();
    let connected = results.iter().filter(|&&c| c).count();
    FaultTrialStats {
        faults,
        trials,
        connected,
        pair_reachability: connected as f64 / trials.max(1) as f64,
    }
}

/// Adversarial **link**-fault trials: cut `faults` random links incident
/// to a minimum-degree victim. The disconnection threshold is the edge
/// connectivity — which equals the minimum degree for every topology in
/// this workspace (`m + 4` for HB vs `m + 2` for HD), so links tell the
/// same story as nodes one level down the physical stack.
pub fn adversarial_link_trials(
    g: &Graph,
    faults: usize,
    trials: usize,
    seed: u64,
) -> FaultTrialStats {
    let n = g.num_nodes();
    let min_deg = (0..n)
        .map(|v| g.degree(v))
        .min()
        .expect("invariant: topologies have at least one node");
    let victims: Vec<NodeId> = (0..n).filter(|&v| g.degree(v) == min_deg).collect();
    let results: Vec<bool> = (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x6A09_E667));
            let victim = victims[rng.random_range(0..victims.len())];
            let mut cut: Vec<NodeId> = g.neighbors(victim).iter().map(|&w| w as usize).collect();
            for i in (1..cut.len()).rev() {
                let j = rng.random_range(0..=i);
                cut.swap(i, j);
            }
            cut.truncate(faults.min(cut.len()));
            let removed: std::collections::BTreeSet<(usize, usize)> = cut
                .iter()
                .map(|&w| (victim.min(w), victim.max(w)))
                .collect();
            // Rebuild without the cut links and check connectivity.
            let edges = g.edges().filter(|&(u, v)| !removed.contains(&(u, v)));
            let h = Graph::from_edges(n, edges)
                .expect("invariant: removing edges keeps the graph simple");
            traverse::is_connected(&h)
        })
        .collect();
    let connected = results.iter().filter(|&&c| c).count();
    FaultTrialStats {
        faults,
        trials,
        connected,
        pair_reachability: connected as f64 / trials.max(1) as f64,
    }
}

/// Survivor-graph fragility: after `faults` random faults, how many
/// **articulation points** (single points of failure) does the survivor
/// graph have, on average over `trials`? A fault-tolerant fabric should
/// stay at 0 well past the first faults; rising counts mean the next
/// single fault can already partition the machine.
pub fn survivor_fragility(g: &Graph, faults: usize, trials: usize, seed: u64) -> f64 {
    let n = g.num_nodes();
    assert!(faults < n);
    let total: usize = (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0xA24B_AED4));
            let mut keep = vec![true; n];
            let mut placed = 0;
            while placed < faults {
                let f = rng.random_range(0..n);
                if keep[f] {
                    keep[f] = false;
                    placed += 1;
                }
            }
            let (sub, _) = g.induced_subgraph(&keep);
            hb_graphs::structure::articulation_points(&sub).len()
        })
        .sum();
    total as f64 / trials.max(1) as f64
}

/// Exhaustively verifies that **no** fault set of the given size
/// disconnects `g` — feasible for `faults <= 2` on moderate graphs, and
/// the direct computational witness of "maximally fault tolerant" at
/// those sizes. Returns the number of fault sets tried.
pub fn exhaustive_fault_check(g: &Graph, faults: usize) -> Option<u64> {
    let n = g.num_nodes();
    match faults {
        1 => {
            let ok = (0..n)
                .into_par_iter()
                .all(|f| traverse::is_connected_avoiding(g, &[f]));
            ok.then_some(n as u64)
        }
        2 => {
            let ok = (0..n)
                .into_par_iter()
                .all(|f1| (f1 + 1..n).all(|f2| traverse::is_connected_avoiding(g, &[f1, f2])));
            ok.then_some((n * (n - 1) / 2) as u64)
        }
        _ => None,
    }
}

/// Finds a *minimum-size disconnecting fault set witness*: the
/// neighborhood of a minimum-degree node always works once
/// `faults >= kappa`, demonstrating the tightness of Corollary 1.
pub fn tight_disconnection_witness(g: &Graph) -> Vec<NodeId> {
    let v = (0..g.num_nodes())
        .min_by_key(|&v| g.degree(v))
        .expect("invariant: topologies have at least one node");
    g.neighbors(v).iter().map(|&w| w as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::HyperButterfly;
    use hb_debruijn::HyperDeBruijn;

    #[test]
    fn hb_survives_all_single_and_double_faults() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        assert!(exhaustive_fault_check(&g, 1).is_some());
        assert!(exhaustive_fault_check(&g, 2).is_some());
        assert_eq!(exhaustive_fault_check(&g, 3), None); // not supported
    }

    #[test]
    fn neighborhood_witness_disconnects() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let witness = tight_disconnection_witness(&g);
        assert_eq!(witness.len(), 5); // m + 4
        assert!(!traverse::is_connected_avoiding(&g, &witness));
    }

    #[test]
    fn random_trials_below_kappa_always_connected() {
        let hb = HyperButterfly::new(2, 3).unwrap();
        let g = hb.build_graph().unwrap();
        // kappa = 6: any 5 faults leave it connected.
        let stats = random_fault_trials(&g, 5, 40, 10, 123);
        assert_eq!(stats.connected, stats.trials);
        assert!((stats.pair_reachability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hd_disconnects_at_lower_fault_count_than_hb() {
        // HD(1, 3): kappa = 3 — the witness has m + 2 = 3 nodes, fewer
        // than HB(1, 3)'s m + 4 = 5 at the same (m, n).
        let hd = HyperDeBruijn::new(1, 3).unwrap();
        let g = hd.build_graph().unwrap();
        let witness = tight_disconnection_witness(&g);
        assert_eq!(witness.len(), 3);
        assert!(!traverse::is_connected_avoiding(&g, &witness));
    }

    #[test]
    fn adversarial_trials_show_the_threshold() {
        // HB(1, 3): degree 5 everywhere. Below 5 targeted faults the
        // graph must stay connected; at 5 the victim is isolated.
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let below = adversarial_fault_trials(&g, 4, 20, 3);
        assert_eq!(below.connected, below.trials);
        let at = adversarial_fault_trials(&g, 5, 20, 3);
        assert_eq!(at.connected, 0);

        // HD(1, 3): threshold at the min degree m + 2 = 3.
        let hd = HyperDeBruijn::new(1, 3).unwrap();
        let g = hd.build_graph().unwrap();
        let below = adversarial_fault_trials(&g, 2, 20, 3);
        assert_eq!(below.connected, below.trials);
        let at = adversarial_fault_trials(&g, 3, 20, 3);
        assert_eq!(at.connected, 0);
    }

    #[test]
    fn adversarial_link_threshold_is_min_degree() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let below = adversarial_link_trials(&g, 4, 15, 5);
        assert_eq!(below.connected, below.trials);
        let at = adversarial_link_trials(&g, 5, 15, 5);
        assert_eq!(at.connected, 0);
    }

    #[test]
    fn fragility_is_zero_below_connectivity_margin() {
        // HB(2, 3) has kappa = 6: after 1 fault the survivor is still
        // 5-connected — no articulation points possible.
        let hb = HyperButterfly::new(2, 3).unwrap();
        let g = hb.build_graph().unwrap();
        assert_eq!(survivor_fragility(&g, 1, 10, 3), 0.0);
        // A cycle, by contrast, becomes a path after 1 fault: all
        // interior survivors are articulation points.
        let c = hb_graphs::generators::cycle(10).unwrap();
        assert_eq!(survivor_fragility(&c, 1, 5, 3), 7.0);
    }

    #[test]
    fn fault_plan_classifies_links_and_nodes() {
        let mut p = FaultPlan::new();
        p.add_node(3).add_link(7, 2);
        assert!(!p.is_empty());
        assert!(p.is_node_faulty(3));
        assert!(!p.is_node_faulty(2));
        // Link faulty by explicit cut (either direction) …
        assert!(p.is_link_faulty(2, 7));
        assert!(p.is_link_faulty(7, 2));
        // … or by a down endpoint.
        assert!(p.is_link_faulty(3, 9));
        assert!(!p.is_link_faulty(4, 5));
        assert_eq!(p.link_fault_reason(4, 5), None);
        assert_eq!(p.link_fault_reason(2, 7).unwrap(), "link 2-7 faulty");
        assert_eq!(p.link_fault_reason(9, 3).unwrap(), "node 3 faulty");
    }

    #[test]
    fn fault_reason_ids_render_the_historical_strings() {
        let mut p = FaultPlan::new();
        p.add_node(3).add_link(7, 2);
        // Normalized link, regardless of argument order.
        assert_eq!(p.link_fault_id(7, 2), Some(FaultReason::Link(2, 7)));
        assert_eq!(p.link_fault_id(2, 7), Some(FaultReason::Link(2, 7)));
        // Head-node fault wins over tail-node fault.
        p.add_node(9);
        assert_eq!(p.link_fault_id(3, 9), Some(FaultReason::Node(9)));
        assert_eq!(p.link_fault_id(9, 3), Some(FaultReason::Node(3)));
        assert_eq!(p.link_fault_id(4, 5), None);
        // Display matches the string API byte for byte.
        for (u, v) in [(7, 2), (3, 9), (9, 3)] {
            assert_eq!(
                p.link_fault_id(u, v).map(|r| r.to_string()),
                p.link_fault_reason(u, v)
            );
        }
        assert_eq!(FaultReason::Node(3).to_string(), "node 3 faulty");
        assert_eq!(FaultReason::Link(2, 7).to_string(), "link 2-7 faulty");
    }

    #[test]
    fn event_attributed_reasons_render_and_stay_two_words() {
        // The interned form must keep `Detour` (an
        // `Option<(u32, FaultReason)>`) within two machine words — the
        // route arena stores one per slot.
        assert!(std::mem::size_of::<FaultReason>() <= 12);
        assert_eq!(
            FaultReason::NodeAt(3, 7).to_string(),
            "node 3 faulty (event 7)"
        );
        assert_eq!(
            FaultReason::LinkAt(2, 7, 0).to_string(),
            "link 2-7 faulty (event 0)"
        );
        assert_eq!(FaultReason::Node(3).event(), None);
        assert_eq!(FaultReason::Link(2, 7).event(), None);
        assert_eq!(FaultReason::NodeAt(3, 7).event(), Some(7));
        assert_eq!(FaultReason::LinkAt(2, 7, 4).event(), Some(4));
    }

    #[test]
    fn attributed_plan_faults_carry_their_event() {
        let mut p = FaultPlan::new();
        p.add_node_at(3, 1).add_link_at(7, 2, 2);
        assert_eq!(p.link_fault_id(2, 7), Some(FaultReason::LinkAt(2, 7, 2)));
        assert_eq!(p.link_fault_id(9, 3), Some(FaultReason::NodeAt(3, 1)));
        assert_eq!(
            p.link_fault_reason(9, 3).unwrap(),
            "node 3 faulty (event 1)"
        );
        // Attribution participates in plan equality: an event-injected
        // fault is not interchangeable with a static one.
        let statically = FaultPlan::from_sets([3], [(2, 7)]);
        assert_ne!(p, statically);
        // Re-faulting an already-static fault re-attributes it.
        let mut s = FaultPlan::from_sets([3], []);
        assert_eq!(s.link_fault_id(9, 3), Some(FaultReason::Node(3)));
        s.add_node_at(3, 5);
        assert_eq!(s.link_fault_id(9, 3), Some(FaultReason::NodeAt(3, 5)));
    }

    #[test]
    fn repairs_restore_equality_with_the_empty_plan() {
        let mut p = FaultPlan::new();
        p.add_node_at(3, 0).add_link_at(1, 0, 1).add_node(9);
        assert!(!p.is_empty());
        p.remove_node(3).remove_link(0, 1).remove_node(9);
        assert!(p.is_empty());
        assert_eq!(p, FaultPlan::new());
        // Repairing something healthy is a no-op.
        p.remove_node(42).remove_link(4, 5);
        assert_eq!(p, FaultPlan::new());
    }

    #[test]
    fn timeline_parse_accepts_the_documented_grammar() {
        let tl = FaultTimeline::parse(
            "# warm-up\n\
             @12 fault node 5   # mid-run outage\n\
             @12 fault link 3-0\n\
             \n\
             @40 repair node 5\n",
        )
        .unwrap();
        assert_eq!(tl.len(), 3);
        assert_eq!(
            tl.events()[0],
            FaultEvent {
                cycle: 12,
                kind: FaultEventKind::Fault,
                target: FaultTarget::Node(5),
            }
        );
        // Links normalize on push, exactly like `FaultPlan::add_link`.
        assert_eq!(tl.events()[1].target, FaultTarget::Link(0, 3));
        assert_eq!(tl.events()[2].kind, FaultEventKind::Repair);
        assert!(!tl.is_empty());
        assert!(FaultTimeline::new().is_empty());
    }

    #[test]
    fn timeline_rejects_malformed_lines_and_disorder() {
        for bad in [
            "fault node 5",        // missing @cycle
            "@3 break node 5",     // unknown verb
            "@3 fault node x",     // bad id
            "@3 fault link 5",     // not U-V
            "@3 fault node 5 now", // trailing token
        ] {
            assert!(FaultTimeline::parse(bad).is_err(), "accepted: {bad}");
        }
        let err = FaultTimeline::parse("@9 fault node 1\n@3 repair node 1").unwrap_err();
        assert!(err.contains("nondecreasing"), "got: {err}");
        let mut tl = FaultTimeline::new();
        tl.push(4, FaultEventKind::Fault, FaultTarget::Node(0));
        assert!(tl
            .try_push(3, FaultEventKind::Repair, FaultTarget::Node(0))
            .is_err());
    }

    #[test]
    fn hot_nodes_cover_fault_neighborhoods() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let p = FaultPlan::from_sets([0], [(5, 6)]);
        let hot = p.hot_nodes(&g);
        assert!(hot[0]);
        for &w in g.neighbors(0) {
            assert!(hot[w as usize]);
        }
        assert!(hot[5] && hot[6]);
        let n_hot = hot.iter().filter(|&&h| h).count();
        assert!(n_hot < g.num_nodes(), "faults must stay local");
    }

    #[test]
    fn trials_are_deterministic_under_seed() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let a = random_fault_trials(&g, 6, 10, 5, 7);
        let b = random_fault_trials(&g, 6, 10, 5, 7);
        assert_eq!(a, b);
    }
}
