//! Edge forwarding index — the static congestion of a routing scheme.
//!
//! The paper motivates `HB(m, n)` for VLSI multiprocessors; a key static
//! quality measure for such fabrics is the **edge forwarding index**: the
//! maximum, over directed channels, of the number of all-pairs routes
//! crossing that channel. Together with the mean it captures how evenly
//! the topology's oblivious router spreads traffic — a regular Cayley
//! graph with a symmetric router should be nearly uniform, while the
//! hyper-deBruijn's irregular nodes concentrate routes.

use crate::topology::NetTopology;
use hb_telemetry::{Profile, Telemetry};
use rayon::prelude::*;

/// Forwarding-index statistics for one topology + router.
#[derive(Clone, Debug, PartialEq)]
pub struct ForwardingReport {
    /// Topology name.
    pub name: String,
    /// Maximum routes over any directed channel.
    pub max: u64,
    /// Mean routes per directed channel.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean) — 0 for perfectly uniform.
    pub cv: f64,
    /// Number of directed channels.
    pub channels: usize,
    /// Routed pairs (all ordered pairs of distinct nodes).
    pub pairs: u64,
}

/// Computes the forwarding index under the topology's own router, over
/// all ordered pairs of distinct nodes. Parallelised over sources.
pub fn edge_forwarding_index(topo: &dyn NetTopology) -> ForwardingReport {
    edge_forwarding_index_with(topo, None)
}

/// [`edge_forwarding_index`] with optional work attribution: when a
/// telemetry handle is given, records the `forwarding/route_scan` phase
/// (one invocation per ordered pair, one work unit per channel crossing)
/// into its profile. The totals are a pure function of the topology, so
/// the profile is identical at every rayon thread count.
pub fn edge_forwarding_index_with(
    topo: &dyn NetTopology,
    tel: Option<&Telemetry>,
) -> ForwardingReport {
    let g = topo.graph();
    let n = g.num_nodes();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for v in 0..n {
        offsets.push(offsets[v] + g.degree(v));
    }
    let channels = offsets[n];

    let counts: Vec<u64> = (0..n)
        .into_par_iter()
        .map(|src| {
            let mut local = vec![0u64; channels];
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                let route = topo.route(src, dst);
                for w in route.windows(2) {
                    let port = g
                        .neighbors(w[0])
                        .binary_search(&(w[1] as u32))
                        .expect("invariant: route steps are edges of the topology");
                    local[offsets[w[0]] + port] += 1;
                }
            }
            local
        })
        .reduce(
            || vec![0u64; channels],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );

    let total: u64 = counts.iter().sum();
    if let Some(t) = tel {
        let mut p = Profile::new();
        p.record("forwarding/route_scan", (n as u64) * (n as u64 - 1), total);
        t.merge_profile(&p);
    }
    let mean = total as f64 / channels as f64;
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / channels as f64;
    ForwardingReport {
        name: topo.name().to_string(),
        max: counts.iter().copied().max().unwrap_or(0),
        mean,
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        channels,
        pairs: (n as u64) * (n as u64 - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{HbRouteOrder, HyperButterflyNet, HyperDeBruijnNet, HypercubeNet};

    #[test]
    fn hypercube_forwarding_is_perfectly_uniform() {
        // Bit-fix routing on H_m is edge-symmetric: every channel carries
        // the same number of routes.
        let t = HypercubeNet::new(4).unwrap();
        let r = edge_forwarding_index(&t);
        assert!(r.cv < 1e-9, "cv = {}", r.cv);
        // Total channel crossings = sum of all distances = mean * channels.
        // Mean distance on H_4 is 2 over ordered pairs... verify via sum:
        // sum_{pairs} d = n * m * 2^(m-1) ... spot-check the mean instead.
        assert!(r.mean > 0.0);
    }

    #[test]
    fn hb_forwarding_is_more_uniform_than_hd() {
        let hb = HyperButterflyNet::new(1, 3, HbRouteOrder::CubeFirst).unwrap();
        let hd = HyperDeBruijnNet::new(1, 4).unwrap();
        let rb = edge_forwarding_index(&hb);
        let rd = edge_forwarding_index(&hd);
        // The regular Cayley graph spreads routes more evenly than the
        // irregular baseline (its router also funnels through 0..0/1..1).
        assert!(rb.cv < rd.cv, "HB cv {} vs HD cv {}", rb.cv, rd.cv);
    }

    #[test]
    fn forwarding_total_equals_total_route_length() {
        let t = HypercubeNet::new(3).unwrap();
        let r = edge_forwarding_index(&t);
        // Sum over channels of counts = sum over pairs of route length =
        // sum of Hamming distances = m * 2^(m-1) * 2^m ordered = 3*4*8=96.
        let total = (r.mean * r.channels as f64).round() as u64;
        assert_eq!(total, 96);
    }

    #[test]
    fn profiled_forwarding_records_route_scan_phase() {
        let t = HypercubeNet::new(3).unwrap();
        let tel = Telemetry::summary();
        let r = edge_forwarding_index_with(&t, Some(&tel));
        let prof = tel.profile();
        let scan = prof
            .get("forwarding/route_scan")
            .expect("phase was recorded");
        assert_eq!(scan.invocations, r.pairs);
        // Work units = total channel crossings (see the test above).
        assert_eq!(scan.work, 96);
    }
}
