//! Local time-series recorders for the simulation runners.
//!
//! Mirrors the [`crate::sim::Scoreboard`] pattern: hot loops record into
//! plain local structs (no locks, no name lookups per sample) and the
//! accumulated series merge into the shared [`Telemetry`] handle once at
//! the end of the run. Both recorders key every sample by **logical
//! cycle**, so a serial run and a sharded parallel run produce
//! byte-identical series (the `par_equiv` suite asserts snapshot
//! equality, which covers the series store and the congestion events).
//!
//! Canonical series names (DESIGN.md §12):
//!
//! | name                  | sample (once per cycle)                     |
//! |-----------------------|---------------------------------------------|
//! | `sim.in_flight`       | routed packets in the network, end of cycle |
//! | `sim.injected`        | injections consumed this cycle              |
//! | `sim.delivered`       | packets delivered this cycle                |
//! | `sim.queue.max`       | deepest channel queue, post-injection       |
//! | `sim.active_channels` | channels with a non-empty queue             |
//! | `link.U->V.queue`     | queue depth of channel U->V on every cycle  |
//! |                       | it held at least one packet                 |
//! | `sim.reroutes`        | detoured injections this cycle (faulted)    |
//! | `sim.unroutable`      | refused injections this cycle (faulted)     |

use hb_telemetry::{Series, Telemetry, TsConfig};

/// Whole-network per-cycle series, recorded once per simulated cycle.
pub(crate) struct GlobalTs {
    in_flight: Series,
    injected: Series,
    delivered: Series,
    queue_max: Series,
    active_channels: Series,
    /// Present only for fault-aware runs.
    faulted: Option<(Series, Series)>, // (reroutes, unroutable)
}

impl GlobalTs {
    pub(crate) fn new(cfg: TsConfig, faulted: bool) -> Self {
        GlobalTs {
            in_flight: Series::new(cfg),
            injected: Series::new(cfg),
            delivered: Series::new(cfg),
            queue_max: Series::new(cfg),
            active_channels: Series::new(cfg),
            faulted: faulted.then(|| (Series::new(cfg), Series::new(cfg))),
        }
    }

    /// Records one cycle's global samples.
    #[inline]
    pub(crate) fn record(
        &mut self,
        cycle: u64,
        in_flight: u64,
        injected: u64,
        delivered: u64,
        queue_max: u64,
        active_channels: u64,
    ) {
        self.in_flight.record(cycle, in_flight);
        self.injected.record(cycle, injected);
        self.delivered.record(cycle, delivered);
        self.queue_max.record(cycle, queue_max);
        self.active_channels.record(cycle, active_channels);
    }

    /// Records one cycle's fault-routing samples. No-op for unfaulted
    /// runs.
    #[inline]
    pub(crate) fn record_faults(&mut self, cycle: u64, reroutes: u64, unroutable: u64) {
        if let Some((r, u)) = self.faulted.as_mut() {
            r.record(cycle, reroutes);
            u.record(cycle, unroutable);
        }
    }

    /// Moves the accumulated series into the shared handle.
    pub(crate) fn merge_into(self, tel: &Telemetry) {
        tel.merge_series("sim.in_flight", self.in_flight);
        tel.merge_series("sim.injected", self.injected);
        tel.merge_series("sim.delivered", self.delivered);
        tel.merge_series("sim.queue.max", self.queue_max);
        tel.merge_series("sim.active_channels", self.active_channels);
        if let Some((r, u)) = self.faulted {
            tel.merge_series("sim.reroutes", r);
            tel.merge_series("sim.unroutable", u);
        }
    }
}

/// Per-channel queue-depth series over the channel range
/// `[lo, lo + len)` — the whole network for serial runs, one shard's
/// slice for parallel runs (channels are disjoint across shards, so
/// shard-local recording merges without conflicts). Series are lazily
/// boxed: idle channels cost one `None`.
pub(crate) struct LinkTs {
    cfg: TsConfig,
    lo: usize,
    series: Vec<Option<Box<Series>>>,
}

impl LinkTs {
    pub(crate) fn new(cfg: TsConfig, lo: usize, len: usize) -> Self {
        LinkTs {
            cfg,
            lo,
            series: (0..len).map(|_| None).collect(),
        }
    }

    /// Records channel `ch`'s queue depth on a cycle it held a packet.
    #[inline]
    pub(crate) fn observe(&mut self, ch: usize, cycle: u64, depth: u64) {
        let cfg = self.cfg;
        self.series[ch - self.lo]
            .get_or_insert_with(|| Box::new(Series::new(cfg)))
            .record(cycle, depth);
    }

    /// Moves the accumulated series into the shared handle, named by the
    /// channel endpoints (`ends` is indexed by global channel id).
    pub(crate) fn merge_into(self, tel: &Telemetry, ends: &[(u32, u32)]) {
        for (i, slot) in self.series.into_iter().enumerate() {
            if let Some(s) = slot {
                let (from, to) = ends[self.lo + i];
                tel.merge_series(&format!("link.{from}->{to}.queue"), *s);
            }
        }
    }
}
