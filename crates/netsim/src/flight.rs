//! Fault-aware simulation with a per-packet **flight recorder**.
//!
//! [`run_with_faults`] is the oblivious unbounded-queue simulator
//! ([`crate::run`]) extended along two axes:
//!
//! * **static faults** — a [`FaultPlan`] marks nodes and links down.
//!   Packets are source-routed obliviously as usual; the first time a
//!   route would cross a faulty link, the remainder is recomputed by
//!   deterministic BFS over the survivor graph and spliced in (one
//!   splice suffices: the detour itself avoids every fault). All of
//!   that happens **once per distinct endpoint pair** in a
//!   [`RouteTable`] built up front — packets carry a `u32` slot, and
//!   reroute attribution is read from the table, never recomputed.
//!   Packets whose endpoints are down, or with no survivor path, are
//!   refused at injection and counted as stranded (packet conservation
//!   holds).
//! * **causal tracing** — under a [`TraceSampling`] policy, selected
//!   packets get a root span plus one child span per hop recording the
//!   node, link, queue depth on arrival, wait cycles, and the forward
//!   decision (`oblivious`, or `reroute` with the fault that caused it).
//!   Spans live in the attached [`hb_telemetry::Telemetry`] handle and
//!   render via `SpanTreeSink` or `ChromeTraceSink`.
//!
//! With `telemetry: None` (or sampling off) the routing decisions are
//! unchanged and the returned [`SimStats`] are byte-identical — the
//! recorder observes, it never steers.
//!
//! With `cfg.threads > 1` the run dispatches to the sharded parallel
//! engine (same stats, byte for byte) **unless** span tracing is live
//! (trace-level handle and sampling on): span ids are allocated in
//! program order, so traced runs stay serial to keep recordings
//! deterministic.

use crate::faults::FaultPlan;
use crate::pool::PacketPool;
use crate::routes::{RouteSrc, RouteTable};
use crate::sim::{
    ChanLayout, ChanQueues, Injection, ProfCounters, Scoreboard, SimConfig, SimStats,
};
use crate::topology::NetTopology;
use crate::tsrec::{GlobalTs, LinkTs};
use hb_graphs::NodeId;
use hb_telemetry::{Event, SpanId, Telemetry};
use std::collections::BTreeSet;

pub use crate::routes::{plan_route, survivor_route};

/// Which packets the flight recorder samples (requires a trace-level
/// telemetry handle; with summary/no telemetry nothing is recorded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceSampling {
    /// Record no packets.
    #[default]
    Off,
    /// Record every packet.
    All,
    /// Record packets whose injection id is divisible by `N` (1/N of
    /// traffic, deterministic). `EveryNth(0)` records nothing.
    EveryNth(u64),
    /// Record every packet whose route traverses a **faulty-adjacent**
    /// link (either endpoint hot per [`FaultPlan::hot_nodes`]) — the
    /// packets that detour around faults or queue next to them.
    FaultAdjacent,
}

impl TraceSampling {
    fn samples(self, id: u64, route: &[u32], hot: &HotSet) -> bool {
        match self {
            TraceSampling::Off => false,
            TraceSampling::All => true,
            TraceSampling::EveryNth(n) => n > 0 && id.is_multiple_of(n),
            TraceSampling::FaultAdjacent => route
                .windows(2)
                .any(|w| hot.is_hot(w[0] as NodeId) || hot.is_hot(w[1] as NodeId)),
        }
    }
}

/// Fault-adjacency mask for [`TraceSampling::FaultAdjacent`]: dense over
/// explicit graphs (as before), a sparse id set over implicit topologies
/// so memory stays O(faults × degree) at million-node scale.
enum HotSet {
    Empty,
    Dense(Vec<bool>),
    Sparse(BTreeSet<NodeId>),
}

impl HotSet {
    #[inline]
    fn is_hot(&self, v: NodeId) -> bool {
        match self {
            HotSet::Empty => false,
            HotSet::Dense(mask) => mask[v],
            HotSet::Sparse(set) => set.contains(&v),
        }
    }
}

/// One packet in flight, carrying its recorder state. Copy-sized: the
/// route (and its detour attribution) lives in the [`RouteTable`].
#[derive(Clone, Copy, Debug)]
struct FlightPacket {
    id: u64,
    /// [`RouteTable`] slot.
    route: u32,
    hop: u32,
    injected_at: u64,
    /// Root span (`None` when unsampled or the span store filled up).
    span: Option<SpanId>,
    /// Open span of the hop currently being waited on / crossed.
    hop_span: Option<SpanId>,
    /// Cycle the packet joined its current channel queue.
    enqueued_at: u64,
}

/// Runs the oblivious simulation of `injections` (sorted by `at`) on
/// `topo` with the given static faults, flight-recording sampled packets
/// into `cfg.telemetry` (trace level). See the module docs for the
/// model; with an empty plan the dynamics — and the returned
/// [`SimStats`] — match [`crate::run`] exactly.
///
/// Beyond the base counters, a telemetry handle also receives
/// `sim.reroutes` (packets that detoured) and `sim.unroutable` (packets
/// refused at injection: faulty endpoint or no survivor path).
///
/// # Panics
/// As [`crate::run`] (unsorted injections, out-of-range nodes).
pub fn run_with_faults(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
    plan: &FaultPlan,
    sampling: TraceSampling,
) -> SimStats {
    let table = RouteTable::for_injections(topo, injections, plan);
    run_flight(
        topo,
        injections,
        cfg,
        RouteSrc::Table(&table),
        plan,
        sampling,
    )
}

/// The flight loop proper, over prebuilt routes: a single shared table
/// (static plan) or a per-injection churn snapshot. `hot_plan` only
/// seeds the [`TraceSampling::FaultAdjacent`] mask — for churn runs it
/// is the union of the base plan and every timeline fault target, so a
/// packet near *any* fault epoch is eligible for sampling.
// analyze: hot(fault-flight cycle loop must stay allocation-free; see alloc_free.rs)
pub(crate) fn run_flight(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
    routes: RouteSrc<'_>,
    hot_plan: &FaultPlan,
    sampling: TraceSampling,
) -> SimStats {
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );

    let tel = cfg.telemetry.as_ref();
    let tracing = tel.is_some_and(Telemetry::trace_enabled) && sampling != TraceSampling::Off;
    if cfg.threads > 1 && !tracing {
        return crate::par::run_sharded(topo, injections, &cfg, routes, true);
    }

    let layout = ChanLayout::new(topo, cfg.implicit);
    let num_channels = layout.num_channels();
    let sparse = cfg.implicit || topo.explicit_graph().is_none();
    let mut queues: ChanQueues<u32> = ChanQueues::new(num_channels, sparse, false);
    let mut pool: PacketPool<FlightPacket> = PacketPool::new();
    let mut active: Vec<usize> = Vec::new();

    let mut board = tel.map(|_| Scoreboard::new(layout.endpoints()));
    let mut ts = tel
        .and_then(|t| t.timeseries_config())
        .map(|c| (GlobalTs::new(c, true), LinkTs::new(c, 0, num_channels)));
    let hot = if matches!(sampling, TraceSampling::FaultAdjacent) {
        match topo.explicit_graph() {
            Some(g) if !sparse => HotSet::Dense(hot_plan.hot_nodes(g)),
            _ => HotSet::Sparse(hot_plan.hot_node_set(topo)),
        }
    } else {
        HotSet::Empty
    };

    // Opens the hop span for a packet joining channel `(u, v)` with
    // `depth` packets already queued ahead of it.
    let open_hop_span =
        |tel: Option<&Telemetry>, p: &mut FlightPacket, cycle: u64, depth: usize| {
            let Some(t) = tel else { return };
            if p.span.is_none() {
                return;
            }
            let path = routes.path(p.route);
            let u = path[p.hop as usize];
            let v = path[p.hop as usize + 1];
            let span = t.span_start(&format!("hop {u}->{v}"), p.span, cycle);
            t.span_attr(span, "node", u.to_string());
            t.span_attr(span, "link", format!("{u}->{v}"));
            t.span_attr(span, "queue", depth.to_string());
            match routes.detour(p.route) {
                Some((at, reason)) if at == p.hop => {
                    t.span_attr(span, "decision", "reroute");
                    t.span_attr(span, "reason", reason.to_string());
                }
                _ => t.span_attr(span, "decision", "oblivious"),
            }
            p.hop_span = span;
            p.enqueued_at = cycle;
        };

    let profiling = cfg.profile && tel.is_some();
    let mut prof = ProfCounters::default();

    let mut stats = SimStats {
        offered: injections.len() as u64,
        ..Default::default()
    };
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut next_inject = 0usize;
    let mut in_flight = 0u64;
    let mut reroutes = 0u64;
    let mut unroutable = 0u64;
    let mut cycle = 0u64;

    let mut moved: Vec<(usize, u32)> = Vec::new(); // (next channel, pool key)
    let mut still_active: Vec<usize> = Vec::new();

    while cycle < cfg.max_cycles {
        let injected_before = next_inject;
        let delivered_before = stats.delivered;
        let reroutes_before = reroutes;
        let unroutable_before = unroutable;
        while next_inject < injections.len() && injections[next_inject].at == cycle {
            let idx = next_inject;
            let inj = injections[idx];
            let id = idx as u64;
            next_inject += 1;
            if let Some(t) = tel {
                t.event(|| Event::PacketInjected {
                    id,
                    src: inj.src as u32,
                    dst: inj.dst as u32,
                    cycle,
                });
            }
            let slot = routes
                .slot_for(idx, inj.src, inj.dst)
                .expect("invariant: route table was built from this exact workload");
            let path = routes.path(slot);
            if profiling {
                prof.lookup_inv += 1;
                prof.lookup_work += path.len() as u64;
            }
            if path.is_empty() {
                // Faulty endpoint or no survivor path: refused.
                unroutable += 1;
                if let Some(t) = tel {
                    t.event(|| Event::PacketDropped {
                        id,
                        at: inj.src as u32,
                        cycle,
                    });
                }
                continue;
            }
            if path.len() <= 1 {
                stats.delivered += 1;
                if let Some(t) = tel {
                    t.event(|| Event::PacketDelivered {
                        id,
                        dst: inj.dst as u32,
                        latency: 0,
                        cycle,
                    });
                }
                continue;
            }
            let detoured = routes.detour(slot).is_some();
            let span = if tracing && sampling.samples(id, path, &hot) {
                let t = tel.expect("invariant: tracing is only enabled with telemetry on");
                let span = t.span_start(
                    // analyze: allow(alloc-in-hot, span label built only for sampled trace packets)
                    &format!("packet #{id} {}->{}", inj.src, inj.dst),
                    None,
                    cycle,
                );
                if detoured {
                    t.span_attr(span, "rerouted", "true");
                }
                span
            } else {
                None
            };
            if detoured {
                reroutes += 1;
            }
            let ch = layout.channel_of(path[0] as NodeId, path[1] as NodeId);
            let mut p = FlightPacket {
                id,
                route: slot,
                hop: 0,
                injected_at: cycle,
                span,
                hop_span: None,
                enqueued_at: cycle,
            };
            open_hop_span(tel, &mut p, cycle, queues.len(ch));
            let key = pool.alloc(p);
            queues.push_back(ch, key);
            if queues.activate(ch) {
                active.push(ch);
            }
            in_flight += 1;
        }

        // Canonical ascending-channel service order (see `crate::run`).
        active.sort_unstable();

        let mut cycle_peak = 0usize;
        if let Some(b) = board.as_mut() {
            for &ch in &active {
                let len = queues.len(ch);
                b.peak[ch] = b.peak[ch].max(len);
                cycle_peak = cycle_peak.max(len);
                if let Some((_, lt)) = ts.as_mut() {
                    lt.observe(ch, cycle, len as u64);
                }
            }
        } else {
            cycle_peak = active.iter().map(|&ch| queues.len(ch)).max().unwrap_or(0);
        }
        stats.peak_queue = stats.peak_queue.max(cycle_peak);
        let cycle_active = active.len();

        // Two-phase advance, exactly as `run`: one packet per active
        // channel moves one hop.
        moved.clear();
        still_active.clear();
        for &ch in &active {
            if profiling {
                prof.service_inv += 1;
                prof.service_work += queues.len(ch) as u64;
            }
            if let Some(key) = queues.pop_front(ch) {
                let mut p = *pool.get(key);
                p.hop += 1;
                let path = routes.path(p.route);
                let here = path[p.hop as usize];
                if let Some(b) = board.as_mut() {
                    b.busy[ch] += 1;
                    b.fwd[ch] += 1;
                    let (from, to) = b.ends[ch];
                    tel.expect("invariant: a scoreboard is only handed out with telemetry on")
                        .event(|| Event::PacketHop {
                            id: p.id,
                            from,
                            to,
                            cycle: cycle + 1,
                        });
                }
                if p.hop_span.is_some() {
                    let t = tel.expect("invariant: spans are only recorded with telemetry on");
                    // Cycles queued beyond the 1-cycle link transit.
                    t.span_attr(p.hop_span, "wait", (cycle - p.enqueued_at).to_string());
                    t.span_end(p.hop_span, cycle + 1);
                    p.hop_span = None;
                }
                if p.hop as usize + 1 == path.len() {
                    let latency = cycle + 1 - p.injected_at;
                    total_latency += latency;
                    total_hops += u64::from(p.hop);
                    latency_samples += 1;
                    stats.max_latency = stats.max_latency.max(latency);
                    stats.delivered += 1;
                    in_flight -= 1;
                    pool.free(key);
                    if let Some(b) = board.as_mut() {
                        b.deliver(latency, u64::from(p.hop));
                        tel.expect("invariant: a scoreboard is only handed out with telemetry on")
                            .event(|| Event::PacketDelivered {
                                id: p.id,
                                dst: here,
                                latency,
                                cycle: cycle + 1,
                            });
                    }
                    if let (Some(t), Some(_)) = (tel, p.span) {
                        t.span_attr(p.span, "latency", latency.to_string());
                        t.span_attr(p.span, "hops", p.hop.to_string());
                        t.span_end(p.span, cycle + 1);
                    }
                } else {
                    let next = path[p.hop as usize + 1];
                    *pool.get_mut(key) = p;
                    moved.push((layout.channel_of(here as NodeId, next as NodeId), key));
                }
            }
            if queues.len(ch) == 0 {
                queues.deactivate(ch);
            } else {
                still_active.push(ch);
            }
        }
        std::mem::swap(&mut active, &mut still_active);
        for &(ch, key) in &moved {
            open_hop_span(tel, pool.get_mut(key), cycle + 1, queues.len(ch));
            queues.push_back(ch, key);
            if queues.activate(ch) {
                active.push(ch);
            }
        }

        if let Some((gt, _)) = ts.as_mut() {
            gt.record(
                cycle,
                in_flight,
                (next_inject - injected_before) as u64,
                stats.delivered - delivered_before,
                cycle_peak as u64,
                cycle_active as u64,
            );
            gt.record_faults(
                cycle,
                reroutes - reroutes_before,
                unroutable - unroutable_before,
            );
        }

        cycle += 1;

        if cfg.stop_when_drained && in_flight == 0 && next_inject == injections.len() {
            break;
        }
    }

    stats.cycles = cycle;
    stats.stranded = unroutable + in_flight + (injections.len() - next_inject) as u64;
    if latency_samples > 0 {
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_latency = total_latency as f64 / latency_samples as f64;
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_hops = total_hops as f64 / latency_samples as f64;
    }
    debug_assert_eq!(
        stats.delivered + stats.stranded,
        stats.offered,
        "packet conservation"
    );
    if let (Some(t), Some(b)) = (tel, board) {
        if profiling {
            prof.finish(
                t,
                Some((routes.num_pairs() as u64, routes.total_route_nodes() as u64)),
            );
        }
        t.counter("sim.reroutes").add(reroutes);
        t.counter("sim.unroutable").add(unroutable);
        if let Some((gt, lt)) = ts.take() {
            lt.merge_into(t, &b.ends);
            gt.merge_into(t);
        }
        b.finish(t, &stats);
        t.detect_congestion(stats.cycles);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run;
    use crate::topology::{HbRouteOrder, HyperButterflyNet, HypercubeNet};
    use crate::workload;

    fn hb_net() -> HyperButterflyNet {
        HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap()
    }

    #[test]
    fn empty_plan_matches_plain_run_exactly() {
        let t = hb_net();
        let traffic = workload::uniform(t.num_nodes(), 60, 0.2, 11);
        let base = run(&t, &traffic, SimConfig::default());
        let faulted = run_with_faults(
            &t,
            &traffic,
            SimConfig::default(),
            &FaultPlan::new(),
            TraceSampling::Off,
        );
        assert_eq!(base, faulted);
    }

    #[test]
    fn timeseries_tracks_reroutes_in_faulted_runs() {
        let t = HypercubeNet::new(4).unwrap();
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1).add_node(7);
        let traffic = workload::uniform(t.num_nodes(), 40, 0.3, 9);
        let tel = Telemetry::summary();
        tel.enable_timeseries(hb_telemetry::TsConfig::new(5));
        let s = run_with_faults(
            &t,
            &traffic,
            SimConfig::default().with_telemetry(tel.clone()),
            &plan,
            TraceSampling::Off,
        );
        let series = tel.series();
        assert_eq!(series["sim.injected"].total(), s.offered);
        assert_eq!(series["sim.delivered"].total(), s.delivered);
        // Windowed reroute/unroutable series reconcile with the run
        // counters exactly.
        assert_eq!(
            series["sim.reroutes"].total(),
            tel.counter("sim.reroutes").get()
        );
        assert_eq!(
            series["sim.unroutable"].total(),
            tel.counter("sim.unroutable").get()
        );
    }

    #[test]
    fn tracing_does_not_perturb_stats() {
        let t = hb_net();
        let traffic = workload::uniform(t.num_nodes(), 60, 0.2, 11);
        let mut plan = FaultPlan::new();
        plan.add_node(5).add_link(0, 1);
        let off = run_with_faults(
            &t,
            &traffic,
            SimConfig::default(),
            &plan,
            TraceSampling::Off,
        );
        let tel = Telemetry::with_trace(65_536);
        let on = run_with_faults(
            &t,
            &traffic,
            SimConfig::default().with_telemetry(tel.clone()),
            &plan,
            TraceSampling::All,
        );
        assert_eq!(off, on, "the recorder observes, it never steers");
        assert!(!tel.spans().is_empty());
        // Summary-level telemetry records counters but no spans.
        let sum = Telemetry::summary();
        let s = run_with_faults(
            &t,
            &traffic,
            SimConfig::default().with_telemetry(sum.clone()),
            &plan,
            TraceSampling::All,
        );
        assert_eq!(off, s);
        assert!(sum.spans().is_empty());
        assert_eq!(sum.counter("sim.delivered").get(), s.delivered);
    }

    #[test]
    fn packets_detour_around_a_cut_link() {
        // Hypercube 0 -> 15 routes dimension-ordered 0,1,3,7,15; cut the
        // first link and the packet must detour yet still arrive.
        let t = HypercubeNet::new(4).unwrap();
        let base_route = t.route(0, 15);
        assert_eq!(base_route, vec![0, 1, 3, 7, 15]);
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1);
        let inj = [Injection {
            src: 0,
            dst: 15,
            at: 0,
        }];
        let tel = Telemetry::with_trace(256);
        let s = run_with_faults(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &plan,
            TraceSampling::All,
        );
        assert_eq!(s.delivered, 1);
        assert_eq!(s.stranded, 0);
        assert_eq!(tel.counter("sim.reroutes").get(), 1);
        // The detour is minimal in the survivor graph: still 4 hops via
        // another dimension order.
        assert_eq!(s.avg_hops, 4.0);
        // The reroute hop span carries the attribution.
        let spans = tel.spans();
        let reroute_hop = spans
            .iter()
            .find(|sp| sp.attr("decision") == Some("reroute"))
            .expect("a reroute hop span");
        assert_eq!(reroute_hop.attr("reason"), Some("link 0-1 faulty"));
        assert_eq!(reroute_hop.attr("node"), Some("0"));
    }

    #[test]
    fn detour_can_lengthen_mid_route() {
        // Cut a link in the middle of the dimension-ordered path: the
        // healthy prefix is flown, then the detour splices in.
        let t = HypercubeNet::new(4).unwrap();
        let mut plan = FaultPlan::new();
        plan.add_link(3, 7); // third hop of 0,1,3,7,15
        let inj = [Injection {
            src: 0,
            dst: 15,
            at: 0,
        }];
        let tel = Telemetry::with_trace(256);
        let s = run_with_faults(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &plan,
            TraceSampling::All,
        );
        assert_eq!(s.delivered, 1);
        let spans = tel.spans();
        let root = &spans[0];
        assert_eq!(root.attr("rerouted"), Some("true"));
        let hops: Vec<_> = spans
            .iter()
            .filter(|sp| sp.parent == Some(root.id))
            .collect();
        // Prefix 0->1->3 is oblivious; the detour starts at node 3.
        assert_eq!(hops[0].attr("decision"), Some("oblivious"));
        assert_eq!(hops[1].attr("decision"), Some("oblivious"));
        assert_eq!(hops[2].attr("decision"), Some("reroute"));
        assert_eq!(hops[2].attr("reason"), Some("link 3-7 faulty"));
        assert_eq!(hops[2].attr("node"), Some("3"));
    }

    #[test]
    fn unroutable_packets_strand_and_conserve() {
        let t = HypercubeNet::new(3).unwrap();
        let mut plan = FaultPlan::new();
        // Isolate node 7 (neighbors 3, 5, 6): nothing can reach it.
        plan.add_link(7, 3).add_link(7, 5).add_link(7, 6);
        let inj = [
            Injection {
                src: 0,
                dst: 7,
                at: 0,
            },
            Injection {
                src: 0,
                dst: 2,
                at: 0,
            },
        ];
        let tel = Telemetry::summary();
        let s = run_with_faults(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &plan,
            TraceSampling::Off,
        );
        assert_eq!(s.delivered, 1);
        assert_eq!(s.stranded, 1);
        assert_eq!(s.delivered + s.stranded, s.offered);
        assert_eq!(tel.counter("sim.unroutable").get(), 1);

        // Faulty endpoints are refused outright.
        let mut p2 = FaultPlan::new();
        p2.add_node(0);
        let s2 = run_with_faults(&t, &inj, SimConfig::default(), &p2, TraceSampling::Off);
        assert_eq!(s2.delivered, 0);
        assert_eq!(s2.stranded, 2);
    }

    #[test]
    fn every_nth_sampling_selects_exactly_one_in_n() {
        let t = hb_net();
        let n = t.num_nodes();
        let inj: Vec<Injection> = (0..20)
            .map(|i| Injection {
                src: i % n,
                dst: (i * 7 + 3) % n,
                at: 0,
            })
            .collect();
        let tel = Telemetry::with_trace(4096);
        run_with_faults(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &FaultPlan::new(),
            TraceSampling::EveryNth(5),
        );
        let roots: Vec<_> = tel
            .spans()
            .into_iter()
            .filter(|sp| sp.parent.is_none())
            .collect();
        // Ids 0, 5, 10, 15 — minus any self-deliveries, which never
        // enter a queue. Root names embed the id, so check the set.
        for r in &roots {
            let id: u64 = r
                .name
                .strip_prefix("packet #")
                .and_then(|rest| rest.split(' ').next())
                .and_then(|s| s.parse().ok())
                .expect("root span names carry the id");
            assert_eq!(id % 5, 0, "{}", r.name);
        }
        assert!(!roots.is_empty());
    }

    #[test]
    fn fault_adjacent_sampling_records_only_nearby_flights() {
        let t = HypercubeNet::new(4).unwrap();
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1);
        // One packet detours around the cut; one flies far from it.
        let inj = [
            Injection {
                src: 0,
                dst: 15,
                at: 0,
            },
            Injection {
                src: 12,
                dst: 14,
                at: 0,
            },
        ];
        let tel = Telemetry::with_trace(256);
        let s = run_with_faults(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &plan,
            TraceSampling::FaultAdjacent,
        );
        assert_eq!(s.delivered, 2);
        let roots: Vec<_> = tel
            .spans()
            .into_iter()
            .filter(|sp| sp.parent.is_none())
            .collect();
        assert_eq!(roots.len(), 1, "only the near-fault flight is sampled");
        assert!(roots[0].name.starts_with("packet #0 "));
        assert_eq!(roots[0].attr("rerouted"), Some("true"));
    }

    #[test]
    fn hop_spans_record_queue_depth_and_wait() {
        // Two packets on the same first channel: the second sees queue
        // depth 1 on arrival and waits one cycle.
        let t = HypercubeNet::new(3).unwrap();
        let inj = [
            Injection {
                src: 0,
                dst: 1,
                at: 0,
            },
            Injection {
                src: 0,
                dst: 1,
                at: 0,
            },
        ];
        let tel = Telemetry::with_trace(64);
        run_with_faults(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &FaultPlan::new(),
            TraceSampling::All,
        );
        let spans = tel.spans();
        let second_hop = spans
            .iter()
            .find(|sp| sp.parent.is_some() && sp.attr("queue") == Some("1"))
            .expect("queued hop span");
        assert_eq!(second_hop.attr("wait"), Some("1"));
        assert_eq!(second_hop.duration(), 2); // 1 wait + 1 transit
        let first_hop = spans
            .iter()
            .find(|sp| sp.parent.is_some() && sp.attr("queue") == Some("0"))
            .expect("unqueued hop span");
        assert_eq!(first_hop.attr("wait"), Some("0"));
        assert_eq!(first_hop.duration(), 1);
    }

    #[test]
    fn survivor_route_avoids_all_faults() {
        let t = hb_net();
        let g = t.graph();
        let mut plan = FaultPlan::new();
        plan.add_node(1).add_link(0, 2);
        for dst in [3usize, 17, 40] {
            let r = survivor_route(g, 0, dst, &plan).expect("still connected");
            assert_eq!(r[0], 0);
            assert_eq!(*r.last().unwrap(), dst);
            for w in r.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
                assert!(!plan.is_link_faulty(w[0], w[1]));
            }
        }
    }
}
