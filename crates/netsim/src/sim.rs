//! Cycle-accurate store-and-forward packet simulator.
//!
//! Model (the standard interconnection-network abstraction the paper's
//! VLSI motivation implies):
//!
//! * every undirected edge is two directed **channels**, each moving at
//!   most one packet per cycle (1 packet = 1 flit);
//! * each channel has a FIFO queue at its sending node (unbounded —
//!   latency-versus-load studies measure occupancy instead of dropping);
//! * packets are **source routed**: the topology's oblivious router fixes
//!   the path at injection (hop = 1 cycle);
//! * a node's channels are served independently (all-port model), which
//!   matches the bounded-degree design point the paper argues for: a
//!   node never serves more than `degree` channels.

use crate::topology::NetTopology;
use hb_graphs::NodeId;
use std::collections::VecDeque;

/// One packet in flight.
#[derive(Clone, Debug)]
struct Packet {
    /// Precomputed route (node ids); `route[hop]` is the current node.
    route: Vec<NodeId>,
    hop: u32,
    injected_at: u64,
}

/// A packet to inject: source, destination, injection cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle at which the packet enters the source's queues.
    pub at: u64,
}

/// Aggregate results of one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Packets offered by the workload.
    pub offered: u64,
    /// Packets delivered before the cycle limit.
    pub delivered: u64,
    /// Packets not delivered when the simulation stopped: still queued,
    /// in flight, or never injected (injection time past the cycle
    /// limit). Invariant: `delivered + stranded == offered`.
    pub stranded: u64,
    /// Mean delivered latency (cycles), 0 if nothing was delivered.
    pub avg_latency: f64,
    /// Largest delivered latency.
    pub max_latency: u64,
    /// Mean hop count of delivered packets.
    pub avg_hops: f64,
    /// Peak queue occupancy over all channels and cycles.
    pub peak_queue: usize,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Hard stop, even if packets remain in flight.
    pub max_cycles: u64,
    /// Stop early once all offered packets are delivered.
    pub stop_when_drained: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { max_cycles: 100_000, stop_when_drained: true }
    }
}

/// Runs the simulation of `injections` (must be sorted by `at`) on
/// `topo`.
///
/// # Panics
/// Panics if injections are not sorted by injection cycle, or reference
/// out-of-range nodes.
///
/// # Examples
/// ```
/// use hb_netsim::topology::{HbRouteOrder, HyperButterflyNet};
/// use hb_netsim::{run, sim::SimConfig, workload};
/// let net = HyperButterflyNet::new(1, 3, HbRouteOrder::CubeFirst).unwrap();
/// let traffic = workload::uniform(48, 10, 0.2, 7);
/// let stats = run(&net, &traffic, SimConfig::default());
/// assert_eq!(stats.delivered, stats.offered);
/// ```
pub fn run(topo: &dyn NetTopology, injections: &[Injection], cfg: SimConfig) -> SimStats {
    let g = topo.graph();
    let n = g.num_nodes();
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );

    // Channel layout: channel of (u, port) = csr offset of u + port.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for v in 0..n {
        offsets.push(offsets[v] + g.degree(v));
    }
    let num_channels = offsets[n];
    let mut queues: Vec<VecDeque<Packet>> = vec![VecDeque::new(); num_channels];
    // Channels with any queued packet, to avoid scanning all E per cycle.
    let mut active: Vec<usize> = Vec::new();
    let mut is_active = vec![false; num_channels];

    let channel_of = |u: NodeId, v: NodeId| -> usize {
        let port = g
            .neighbors(u)
            .binary_search(&(v as u32))
            .unwrap_or_else(|_| panic!("route step ({u}, {v}) is not an edge"));
        offsets[u] + port
    };

    let mut stats = SimStats { offered: injections.len() as u64, ..Default::default() };
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut next_inject = 0usize;
    let mut in_flight = 0u64;
    let mut cycle = 0u64;

    let enqueue = |queues: &mut Vec<VecDeque<Packet>>,
                       active: &mut Vec<usize>,
                       is_active: &mut Vec<bool>,
                       ch: usize,
                       p: Packet| {
        queues[ch].push_back(p);
        if !is_active[ch] {
            is_active[ch] = true;
            active.push(ch);
        }
    };

    while cycle < cfg.max_cycles {
        // Inject everything due this cycle.
        while next_inject < injections.len() && injections[next_inject].at == cycle {
            let inj = injections[next_inject];
            next_inject += 1;
            let route = topo.route(inj.src, inj.dst);
            if route.len() <= 1 {
                // Self-delivery: zero-latency, zero hops.
                stats.delivered += 1;
                continue;
            }
            let ch = channel_of(route[0], route[1]);
            let p = Packet { route, hop: 0, injected_at: cycle };
            enqueue(&mut queues, &mut active, &mut is_active, ch, p);
            in_flight += 1;
        }

        // Queue occupancy peaks right after injections and moves land.
        stats.peak_queue = stats
            .peak_queue
            .max(active.iter().map(|&ch| queues[ch].len()).max().unwrap_or(0));

        // Advance one packet per active channel (two-phase: collect moves
        // first so a packet moves at most one hop per cycle).
        let mut moved: Vec<(usize, Packet)> = Vec::new(); // (next channel, packet)
        let mut still_active = Vec::with_capacity(active.len());
        for &ch in &active {
            if let Some(mut p) = queues[ch].pop_front() {
                p.hop += 1;
                let here = p.route[p.hop as usize];
                if p.hop as usize + 1 == p.route.len() {
                    // Arrived.
                    let latency = cycle + 1 - p.injected_at;
                    total_latency += latency;
                    total_hops += p.hop as u64;
                    latency_samples += 1;
                    stats.max_latency = stats.max_latency.max(latency);
                    stats.delivered += 1;
                    in_flight -= 1;
                } else {
                    let next = p.route[p.hop as usize + 1];
                    moved.push((channel_of(here, next), p));
                }
            }
            if queues[ch].is_empty() {
                is_active[ch] = false;
            } else {
                still_active.push(ch);
            }
        }
        active = still_active;
        for (ch, p) in moved {
            enqueue(&mut queues, &mut active, &mut is_active, ch, p);
        }

        cycle += 1;

        if cfg.stop_when_drained && in_flight == 0 && next_inject == injections.len() {
            break;
        }
    }

    stats.cycles = cycle;
    // Stranded = still queued plus never injected (cycle limit reached
    // before their injection time): delivered + stranded == offered.
    stats.stranded = in_flight + (injections.len() - next_inject) as u64;
    if latency_samples > 0 {
        stats.avg_latency = total_latency as f64 / latency_samples as f64;
        stats.avg_hops = total_hops as f64 / latency_samples as f64;
    }
    stats
}

/// Runs the oblivious simulation with **bounded queues and
/// backpressure**: each channel queue holds at most `capacity` packets; a
/// packet advances only if its next queue has room (head-of-line
/// blocking, credit-style flow control). Injection fails when the first
/// queue is full — such packets are dropped and counted in `stranded`
/// (delivered + stranded == offered still holds).
///
/// This is the realistic finite-buffer router model; the unbounded
/// [`run`] measures latency-versus-load without loss, this one measures
/// loss and saturation onset.
///
/// **Deadlock**: finite buffers plus cyclic channel dependencies can
/// deadlock (the classic wormhole/store-and-forward hazard — the level
/// cycle of the butterfly makes such cycles possible). A deadlocked run
/// simply hits `max_cycles` with `stranded > 0`; detecting/avoiding
/// deadlock (virtual channels, bubble routing) is out of scope for this
/// reproduction and flagged as future work in DESIGN.md.
///
/// # Panics
/// As [`run`].
pub fn run_bounded(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
    capacity: usize,
) -> SimStats {
    assert!(capacity >= 1, "queues need capacity >= 1");
    let g = topo.graph();
    let n = g.num_nodes();
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for v in 0..n {
        offsets.push(offsets[v] + g.degree(v));
    }
    let num_channels = offsets[n];
    let mut queues: Vec<VecDeque<Packet>> = vec![VecDeque::new(); num_channels];
    let channel_of = |u: NodeId, v: NodeId| -> usize {
        let port = g
            .neighbors(u)
            .binary_search(&(v as u32))
            .unwrap_or_else(|_| panic!("route step ({u}, {v}) is not an edge"));
        offsets[u] + port
    };

    let mut stats = SimStats { offered: injections.len() as u64, ..Default::default() };
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut next_inject = 0usize;
    let mut in_flight = 0u64;
    let mut dropped = 0u64;
    let mut cycle = 0u64;

    while cycle < cfg.max_cycles {
        while next_inject < injections.len() && injections[next_inject].at == cycle {
            let inj = injections[next_inject];
            next_inject += 1;
            let route = topo.route(inj.src, inj.dst);
            if route.len() <= 1 {
                stats.delivered += 1;
                continue;
            }
            let ch = channel_of(route[0], route[1]);
            if queues[ch].len() >= capacity {
                dropped += 1; // source buffer full: injection refused
                continue;
            }
            queues[ch].push_back(Packet { route, hop: 0, injected_at: cycle });
            in_flight += 1;
        }

        stats.peak_queue = stats
            .peak_queue
            .max(queues.iter().map(VecDeque::len).max().unwrap_or(0));

        // Two-phase advance: a head packet moves only if its target queue
        // currently has room; room freed this cycle becomes visible next
        // cycle (conservative credit model).
        let mut arrivals: Vec<(usize, Packet)> = Vec::new();
        let mut incoming = vec![0usize; num_channels];
        for ch in 0..num_channels {
            let Some(front) = queues[ch].front() else { continue };
            let hop = front.hop as usize;
            let arriving_last = hop + 2 == front.route.len();
            if arriving_last {
                let mut p = queues[ch].pop_front().expect("front exists");
                p.hop += 1;
                let latency = cycle + 1 - p.injected_at;
                total_latency += latency;
                total_hops += p.hop as u64;
                latency_samples += 1;
                stats.max_latency = stats.max_latency.max(latency);
                stats.delivered += 1;
                in_flight -= 1;
            } else {
                let here = front.route[hop + 1];
                let next = front.route[hop + 2];
                let next_ch = channel_of(here, next);
                if queues[next_ch].len() + incoming[next_ch] < capacity {
                    let mut p = queues[ch].pop_front().expect("front exists");
                    p.hop += 1;
                    incoming[next_ch] += 1;
                    arrivals.push((next_ch, p));
                }
                // else: head-of-line blocked; wait.
            }
        }
        for (ch, p) in arrivals {
            queues[ch].push_back(p);
        }
        cycle += 1;
        if cfg.stop_when_drained && in_flight == 0 && next_inject == injections.len() {
            break;
        }
    }
    stats.cycles = cycle;
    stats.stranded = dropped + in_flight + (injections.len() - next_inject) as u64;
    if latency_samples > 0 {
        stats.avg_latency = total_latency as f64 / latency_samples as f64;
        stats.avg_hops = total_hops as f64 / latency_samples as f64;
    }
    stats
}

/// A packet in the adaptive simulator: no fixed route, only a
/// destination.
#[derive(Clone, Debug)]
struct AdaptivePacket {
    dst: NodeId,
    hops: u32,
    injected_at: u64,
}

/// Runs a **minimal adaptive** simulation: at every hop the packet picks,
/// among the topology's productive next hops (neighbors on some shortest
/// path, [`NetTopology::productive_hops`]), the one whose outgoing queue
/// is currently shortest. Hop counts stay minimal; only the *choice* of
/// shortest path adapts to congestion — the ablation partner of the
/// oblivious [`run`].
///
/// # Panics
/// As [`run`]; additionally panics if a topology reports no productive
/// hop for an undelivered packet (which would contradict shortest-path
/// reachability).
pub fn run_adaptive(topo: &dyn NetTopology, injections: &[Injection], cfg: SimConfig) -> SimStats {
    let g = topo.graph();
    let n = g.num_nodes();
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for v in 0..n {
        offsets.push(offsets[v] + g.degree(v));
    }
    let num_channels = offsets[n];
    // Channel id -> head node (the node a popped packet arrives at).
    let mut chan_to = vec![0u32; num_channels];
    for v in 0..n {
        for (port, &w) in g.neighbors(v).iter().enumerate() {
            chan_to[offsets[v] + port] = w;
        }
    }
    let mut queues: Vec<VecDeque<AdaptivePacket>> = vec![VecDeque::new(); num_channels];
    let mut active: Vec<usize> = Vec::new();
    let mut is_active = vec![false; num_channels];

    let channel_of = |u: NodeId, v: NodeId| -> usize {
        let port = g
            .neighbors(u)
            .binary_search(&(v as u32))
            .unwrap_or_else(|_| panic!("hop ({u}, {v}) is not an edge"));
        offsets[u] + port
    };
    // Least-loaded productive channel out of `from` toward `dst`.
    let choose = |queues: &[VecDeque<AdaptivePacket>], from: NodeId, dst: NodeId| -> usize {
        topo.productive_hops(from, dst)
            .into_iter()
            .map(|w| channel_of(from, w))
            .min_by_key(|&ch| queues[ch].len())
            .expect("a productive hop exists for any undelivered packet")
    };

    let mut stats = SimStats { offered: injections.len() as u64, ..Default::default() };
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut next_inject = 0usize;
    let mut in_flight = 0u64;
    let mut cycle = 0u64;

    while cycle < cfg.max_cycles {
        while next_inject < injections.len() && injections[next_inject].at == cycle {
            let inj = injections[next_inject];
            next_inject += 1;
            if inj.src == inj.dst {
                stats.delivered += 1;
                continue;
            }
            let ch = choose(&queues, inj.src, inj.dst);
            queues[ch].push_back(AdaptivePacket { dst: inj.dst, hops: 0, injected_at: cycle });
            if !is_active[ch] {
                is_active[ch] = true;
                active.push(ch);
            }
            in_flight += 1;
        }

        stats.peak_queue = stats
            .peak_queue
            .max(active.iter().map(|&ch| queues[ch].len()).max().unwrap_or(0));

        let mut moved: Vec<(NodeId, AdaptivePacket)> = Vec::new(); // (arrival node, packet)
        let mut still_active = Vec::with_capacity(active.len());
        for &ch in &active {
            if let Some(mut p) = queues[ch].pop_front() {
                p.hops += 1;
                let here = chan_to[ch] as usize;
                if here == p.dst {
                    let latency = cycle + 1 - p.injected_at;
                    total_latency += latency;
                    total_hops += p.hops as u64;
                    latency_samples += 1;
                    stats.max_latency = stats.max_latency.max(latency);
                    stats.delivered += 1;
                    in_flight -= 1;
                } else {
                    moved.push((here, p));
                }
            }
            if queues[ch].is_empty() {
                is_active[ch] = false;
            } else {
                still_active.push(ch);
            }
        }
        active = still_active;
        for (here, p) in moved {
            let ch = choose(&queues, here, p.dst);
            queues[ch].push_back(p);
            if !is_active[ch] {
                is_active[ch] = true;
                active.push(ch);
            }
        }
        cycle += 1;
        if cfg.stop_when_drained && in_flight == 0 && next_inject == injections.len() {
            break;
        }
    }

    stats.cycles = cycle;
    // Stranded = still queued plus never injected (cycle limit reached
    // before their injection time): delivered + stranded == offered.
    stats.stranded = in_flight + (injections.len() - next_inject) as u64;
    if latency_samples > 0 {
        stats.avg_latency = total_latency as f64 / latency_samples as f64;
        stats.avg_hops = total_hops as f64 / latency_samples as f64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{HbRouteOrder, HyperButterflyNet, HypercubeNet};

    #[test]
    fn single_packet_latency_is_distance() {
        let t = HypercubeNet::new(4).unwrap();
        let inj = [Injection { src: 0, dst: 0b1111, at: 0 }];
        let s = run(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, 1);
        assert_eq!(s.stranded, 0);
        assert_eq!(s.avg_latency, 4.0); // 4 hops, no contention
        assert_eq!(s.avg_hops, 4.0);
    }

    #[test]
    fn contention_serialises_on_shared_channel() {
        // Two packets injected the same cycle over the same first channel.
        let t = HypercubeNet::new(3).unwrap();
        let inj = [
            Injection { src: 0, dst: 1, at: 0 },
            Injection { src: 0, dst: 1, at: 0 },
        ];
        let s = run(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, 2);
        // One arrives at cycle 1, the other queues one cycle: latencies 1, 2.
        assert_eq!(s.avg_latency, 1.5);
        assert_eq!(s.max_latency, 2);
        assert_eq!(s.peak_queue, 2);
    }

    #[test]
    fn self_addressed_packets_deliver_instantly() {
        let t = HypercubeNet::new(3).unwrap();
        let inj = [Injection { src: 5, dst: 5, at: 0 }];
        let s = run(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, 1);
        assert_eq!(s.avg_latency, 0.0);
    }

    #[test]
    fn cycle_limit_strands_packets() {
        let t = HypercubeNet::new(4).unwrap();
        let inj = [Injection { src: 0, dst: 0b1111, at: 0 }];
        let s = run(&t, &inj, SimConfig { max_cycles: 2, stop_when_drained: true });
        assert_eq!(s.delivered, 0);
        assert_eq!(s.stranded, 1);
        assert_eq!(s.cycles, 2);
    }

    #[test]
    fn hb_topology_simulates_end_to_end() {
        let t = HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap();
        let n = t.num_nodes();
        let inj: Vec<Injection> = (0..n)
            .map(|v| Injection { src: v, dst: (v * 7 + 3) % n, at: 0 })
            .collect();
        let s = run(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, n as u64);
        assert_eq!(s.stranded, 0);
        assert!(s.avg_latency >= s.avg_hops);
    }

    #[test]
    fn bounded_queues_preserve_conservation_and_can_drop() {
        let t = HypercubeNet::new(3).unwrap();
        // Ten packets into one channel of capacity 2, same cycle.
        let inj: Vec<Injection> =
            (0..10).map(|_| Injection { src: 0, dst: 1, at: 0 }).collect();
        let s = run_bounded(&t, &inj, SimConfig::default(), 2);
        assert_eq!(s.delivered + s.stranded, s.offered);
        assert_eq!(s.delivered, 2); // only the buffered two survive
        assert_eq!(s.stranded, 8);
    }

    #[test]
    fn bounded_queues_match_unbounded_at_low_load() {
        let t = HypercubeNet::new(4).unwrap();
        let inj = [Injection { src: 0, dst: 0b1111, at: 0 }];
        let b = run_bounded(&t, &inj, SimConfig::default(), 4);
        assert_eq!(b.delivered, 1);
        assert_eq!(b.avg_latency, 4.0);
    }

    #[test]
    fn backpressure_blocks_but_eventually_drains() {
        let t = HypercubeNet::new(3).unwrap();
        // Two packets share the full route 0 -> 1 -> 3; capacity 1 forces
        // the second to wait at each stage but both must arrive.
        let inj = [
            Injection { src: 0, dst: 3, at: 0 },
            Injection { src: 0, dst: 3, at: 1 },
        ];
        let s = run_bounded(&t, &inj, SimConfig::default(), 1);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.stranded, 0);
    }

    #[test]
    fn adaptive_matches_oblivious_hops_at_zero_load() {
        let t = HypercubeNet::new(4).unwrap();
        let inj = [Injection { src: 0, dst: 0b1111, at: 0 }];
        let s = run_adaptive(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, 1);
        assert_eq!(s.avg_hops, 4.0); // adaptive stays minimal
        assert_eq!(s.avg_latency, 4.0);
    }

    #[test]
    fn adaptive_spreads_contention() {
        // Many packets from node 0 to the antipode: oblivious serialises
        // on one fixed route; adaptive fans out over disjoint shortest
        // paths and must not be slower.
        let t = HypercubeNet::new(4).unwrap();
        let inj: Vec<Injection> =
            (0..8).map(|_| Injection { src: 0, dst: 0b1111, at: 0 }).collect();
        let obl = run(&t, &inj, SimConfig::default());
        let ada = run_adaptive(&t, &inj, SimConfig::default());
        assert_eq!(ada.delivered, 8);
        assert!(ada.avg_latency <= obl.avg_latency, "{} vs {}", ada.avg_latency, obl.avg_latency);
        assert_eq!(ada.avg_hops, 4.0, "minimality preserved");
    }

    #[test]
    fn adaptive_works_on_hyper_butterfly() {
        let t = HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap();
        let n = t.num_nodes();
        let inj: Vec<Injection> =
            (0..n).map(|v| Injection { src: v, dst: (v * 31 + 5) % n, at: 0 }).collect();
        let s = run_adaptive(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, n as u64);
        assert_eq!(s.stranded, 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_injections_panic() {
        let t = HypercubeNet::new(3).unwrap();
        let inj = [
            Injection { src: 0, dst: 1, at: 5 },
            Injection { src: 0, dst: 1, at: 0 },
        ];
        run(&t, &inj, SimConfig::default());
    }
}
