//! Cycle-accurate store-and-forward packet simulator.
//!
//! Model (the standard interconnection-network abstraction the paper's
//! VLSI motivation implies):
//!
//! * every undirected edge is two directed **channels**, each moving at
//!   most one packet per cycle (1 packet = 1 flit);
//! * each channel has a FIFO queue at its sending node (unbounded —
//!   latency-versus-load studies measure occupancy instead of dropping);
//! * packets are **source routed**: the topology's oblivious router fixes
//!   the path at injection (hop = 1 cycle);
//! * a node's channels are served independently (all-port model), which
//!   matches the bounded-degree design point the paper argues for: a
//!   node never serves more than `degree` channels.
//!
//! # Observability
//!
//! Attach a [`hb_telemetry::Telemetry`] handle via
//! [`SimConfig::with_telemetry`] and the run populates latency/hop
//! histograms (`sim.latency`, `sim.hops`), counters (`sim.offered`,
//! `sim.delivered`, `sim.stranded`, `sim.cycles`, and `sim.dropped` for
//! bounded runs), per-directed-link forwarding/busy/peak statistics, and
//! — at trace level — per-packet lifecycle events. With `telemetry:
//! None` the hot loops take the exact same code paths as before the
//! instrumentation existed and the returned [`SimStats`] are identical
//! (a unit test asserts this). Hot loops accumulate into dense local
//! vectors and a private histogram, merging into the shared handle once
//! at the end, so the summary-level overhead is O(channels) memory and
//! one branch per serviced channel.

use crate::pool::PacketPool;
use crate::routes::{RouteSrc, RouteTable};
use crate::topology::{NetTopology, MAX_PRODUCTIVE};
use crate::tsrec::{GlobalTs, LinkTs};
use hb_graphs::NodeId;
use hb_telemetry::{Event, Histogram, LinkStats, Profile, Telemetry, CYCLES_COUNTER};
use std::collections::VecDeque;

/// One packet in flight. Copy-sized: the route lives in a
/// [`RouteTable`] and the packet carries only its slot, so queues move
/// 24-byte values (or, pool-backed, 4-byte keys) instead of owned
/// `Vec<NodeId>` routes.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Packet {
    /// Injection index, used as the trace id.
    pub(crate) id: u64,
    /// [`RouteTable`] slot; `table.path(route)[hop]` is the current node.
    pub(crate) route: u32,
    pub(crate) hop: u32,
    pub(crate) injected_at: u64,
}

/// A packet to inject: source, destination, injection cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle at which the packet enters the source's queues.
    pub at: u64,
}

/// Aggregate results of one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Packets offered by the workload.
    pub offered: u64,
    /// Packets delivered before the cycle limit.
    pub delivered: u64,
    /// Packets not delivered when the simulation stopped: still queued,
    /// in flight, or never injected (injection time past the cycle
    /// limit). Invariant: `delivered + stranded == offered`.
    pub stranded: u64,
    /// Mean delivered latency (cycles), 0 if nothing was delivered.
    // analyze: allow(float-determinism, derived summary statistic; engines compare on integer counters)
    pub avg_latency: f64,
    /// Largest delivered latency.
    pub max_latency: u64,
    /// Mean hop count of delivered packets.
    // analyze: allow(float-determinism, derived summary statistic; engines compare on integer counters)
    pub avg_hops: f64,
    /// Peak queue occupancy over all channels and cycles.
    pub peak_queue: usize,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Hard stop, even if packets remain in flight.
    pub max_cycles: u64,
    /// Stop early once all offered packets are delivered.
    pub stop_when_drained: bool,
    /// Optional observability sink. `None` (the default) records nothing
    /// and costs nothing: the returned [`SimStats`] are identical with
    /// and without a handle attached. Histograms cover routed packets
    /// only, matching `avg_latency` (zero-hop self-deliveries are
    /// excluded).
    pub telemetry: Option<Telemetry>,
    /// Worker threads for the sharded parallel engine (`1` = in-place
    /// serial loop). Results are **byte-identical** at every thread
    /// count: shards service channels in the same canonical ascending
    /// channel order the serial loop uses and merge cross-shard traffic
    /// in fixed shard-index order. Applies to [`run`] and
    /// [`crate::flight::run_with_faults`]; the bounded and adaptive
    /// runners have inherently sequential per-cycle dependences
    /// (head-of-line credit admission, least-queue choice) and always
    /// run serially — parallelise those at the experiment-grid level
    /// instead (`hb-bench`).
    pub threads: usize,
    /// Emit per-shard `sim.shard.<i>.*` counters and one root span per
    /// shard (trace level) after a parallel run. Off by default so
    /// telemetry snapshots stay identical across thread counts.
    pub shard_telemetry: bool,
    /// Accumulate a deterministic work-attribution
    /// [`hb_telemetry::Profile`] (phases `sim/route_build`,
    /// `sim/route_lookup`, `sim/queue_service`, `sim/adaptive_scan`)
    /// into the telemetry handle. Work units are logical (nodes written,
    /// packets serviced, candidates scanned — never wall clock), so the
    /// profile is byte-identical run to run **and across thread
    /// counts**. No-op without a telemetry handle. Hot loops count into
    /// plain locals, so the steady state stays allocation-free.
    pub profile: bool,
    /// Force the **implicit/frontier** storage mode: per-channel queues
    /// are materialised lazily in a sparse [`crate::pool::ChannelMap`]
    /// keyed by touched channel, and (for uniform-degree topologies) the
    /// channel layout is computed arithmetically instead of from CSR
    /// adjacency. Results are byte-identical to the dense mode — the
    /// engines drain the same sorted active worklist either way — but
    /// memory is proportional to concurrently busy channels, not to the
    /// topology's channel count. Topologies without a materialised graph
    /// ([`crate::topology::ImplicitTopology`]) use this mode regardless
    /// of the flag.
    pub implicit: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            max_cycles: 100_000,
            stop_when_drained: true,
            telemetry: None,
            threads: 1,
            shard_telemetry: false,
            profile: false,
            implicit: false,
        }
    }
}

impl SimConfig {
    /// A drain-stopping config with the given cycle cap and no telemetry.
    pub fn bounded(max_cycles: u64) -> Self {
        Self {
            max_cycles,
            ..Self::default()
        }
    }

    /// Attaches a telemetry handle.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Sets the worker-thread count (clamped to at least 1). Stats and
    /// telemetry snapshots do not depend on this value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables per-shard counters and root spans (parallel runs only).
    #[must_use]
    pub fn with_shard_telemetry(mut self, on: bool) -> Self {
        self.shard_telemetry = on;
        self
    }

    /// Enables the deterministic work-attribution profile (requires a
    /// telemetry handle to land anywhere).
    #[must_use]
    pub fn with_profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Forces the implicit/frontier storage mode (sparse lazily
    /// materialised channel records, arithmetic channel layout). See
    /// [`SimConfig::implicit`]; results are byte-identical either way.
    #[must_use]
    pub fn with_implicit_topology(mut self, on: bool) -> Self {
        self.implicit = on;
        self
    }
}

/// Dense per-channel scoreboard a run accumulates into locally, merged
/// into the shared [`Telemetry`] handle once at the end (keeps the hot
/// loop free of locks and string lookups). Shared with the fault-aware
/// runner in [`crate::flight`].
pub(crate) struct Scoreboard {
    pub(crate) latency: Histogram,
    pub(crate) hops: Histogram,
    pub(crate) fwd: Vec<u64>,
    pub(crate) busy: Vec<u64>,
    pub(crate) peak: Vec<usize>,
    /// Channel id -> (tail node, head node).
    pub(crate) ends: Vec<(u32, u32)>,
}

impl Scoreboard {
    pub(crate) fn new(ends: Vec<(u32, u32)>) -> Self {
        let c = ends.len();
        Self {
            latency: Histogram::new(),
            hops: Histogram::new(),
            fwd: vec![0; c],
            busy: vec![0; c],
            peak: vec![0; c],
            ends,
        }
    }

    #[inline]
    pub(crate) fn deliver(&mut self, latency: u64, hops: u64) {
        self.latency.record(latency);
        self.hops.record(hops);
    }

    pub(crate) fn finish(self, tel: &Telemetry, stats: &SimStats) {
        tel.counter("sim.offered").add(stats.offered);
        tel.counter("sim.delivered").add(stats.delivered);
        tel.counter("sim.stranded").add(stats.stranded);
        tel.counter(CYCLES_COUNTER).add(stats.cycles);
        tel.merge_histogram("sim.latency", &self.latency);
        tel.merge_histogram("sim.hops", &self.hops);
        let mut ls = LinkStats::new();
        for (ch, &(from, to)) in self.ends.iter().enumerate() {
            if self.fwd[ch] > 0 {
                ls.record_forward(from, to, self.fwd[ch]);
            }
            if self.busy[ch] > 0 {
                ls.record_busy(from, to, self.busy[ch]);
            }
            if self.peak[ch] > 0 {
                ls.observe_queue(from, to, self.peak[ch]);
            }
        }
        tel.merge_links(&ls);
    }
}

/// Plain-local profiler counters for one run (or one shard): the hot
/// loops bump `u64` fields and the totals become a
/// [`hb_telemetry::Profile`] once at the end, so profiling adds no
/// allocation to the steady state. Work units are logical —
/// route nodes looked up, queue depth held at service, productive
/// candidates scanned — never wall clock, which keeps profiles
/// byte-identical run to run and across thread counts (shard counters
/// sum to exactly the serial totals because the engines are
/// byte-identical).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ProfCounters {
    /// `sim/route_lookup`: one invocation per injection slot lookup;
    /// work = nodes on the resolved path.
    pub(crate) lookup_inv: u64,
    pub(crate) lookup_work: u64,
    /// `sim/queue_service`: one invocation per serviced channel;
    /// work = queue depth at service time (backlog held).
    pub(crate) service_inv: u64,
    pub(crate) service_work: u64,
    /// `sim/adaptive_scan`: one invocation per least-queue choice;
    /// work = productive candidates examined.
    pub(crate) scan_inv: u64,
    pub(crate) scan_work: u64,
    /// `shard/mailbox_merge` (parallel engine, `shard_telemetry` only):
    /// one invocation per phase-B drain; work = packets received.
    pub(crate) mailbox_inv: u64,
    pub(crate) mailbox_work: u64,
    /// `shard/barrier_epoch` (parallel engine, `shard_telemetry` only):
    /// one invocation and one work unit per barrier wait.
    pub(crate) barrier_inv: u64,
    pub(crate) barrier_work: u64,
}

impl ProfCounters {
    /// Sums another shard's counters into this one (plain commutative
    /// addition, so merge order never matters).
    pub(crate) fn absorb(&mut self, o: &ProfCounters) {
        self.lookup_inv += o.lookup_inv;
        self.lookup_work += o.lookup_work;
        self.service_inv += o.service_inv;
        self.service_work += o.service_work;
        self.scan_inv += o.scan_inv;
        self.scan_work += o.scan_work;
        self.mailbox_inv += o.mailbox_inv;
        self.mailbox_work += o.mailbox_work;
        self.barrier_inv += o.barrier_inv;
        self.barrier_work += o.barrier_work;
    }

    /// Folds the counters — plus the one-shot `sim/route_build` phase
    /// when a route table was built — into a profile and merges it into
    /// `tel`. Zero phases are skipped, so runners that never touch a
    /// phase leave it absent.
    pub(crate) fn finish(&self, tel: &Telemetry, route_build: Option<(u64, u64)>) {
        let mut p = Profile::new();
        if let Some((pairs, nodes)) = route_build {
            p.record("sim/route_build", pairs, nodes);
        }
        p.record("sim/route_lookup", self.lookup_inv, self.lookup_work);
        p.record("sim/queue_service", self.service_inv, self.service_work);
        p.record("sim/adaptive_scan", self.scan_inv, self.scan_work);
        p.record("shard/mailbox_merge", self.mailbox_inv, self.mailbox_work);
        p.record("shard/barrier_epoch", self.barrier_inv, self.barrier_work);
        if !p.is_empty() {
            tel.merge_profile(&p);
        }
    }
}

/// Channel id -> (tail, head) endpoints in CSR channel order.
pub(crate) fn channel_endpoints(g: &hb_graphs::Graph, offsets: &[usize]) -> Vec<(u32, u32)> {
    let mut ends = vec![(0u32, 0u32); offsets[g.num_nodes()]];
    for v in 0..g.num_nodes() {
        for (port, &w) in g.neighbors(v).iter().enumerate() {
            ends[offsets[v] + port] = (v as u32, w);
        }
    }
    ends
}

/// CSR channel layout for `g`: channel of `(u, port)` is
/// `offsets[u] + port`. Shared by every runner and the parallel engine.
pub(crate) fn channel_offsets(g: &hb_graphs::Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for v in 0..n {
        offsets.push(offsets[v] + g.degree(v));
    }
    offsets
}

/// How a runner maps `(node, port)` to dense channel ids. The two
/// variants produce the **same numbering**: CSR offsets over sorted
/// adjacency degenerate to `offsets[v] = v * degree` on a uniform-degree
/// graph, with ports in ascending neighbor order either way — so
/// switching layouts never renumbers a channel, which is what keeps
/// implicit-mode runs byte-identical to explicit ones.
pub(crate) enum ChanLayout<'a> {
    /// CSR over the materialised graph's sorted adjacency.
    Csr {
        g: &'a hb_graphs::Graph,
        offsets: Vec<usize>,
    },
    /// Arithmetic layout for uniform-degree topologies: channel of
    /// `(v, port)` is `v * degree + port`, neighbors enumerated
    /// algebraically via [`NetTopology::neighbors_into`] (ascending).
    /// O(1) memory — no adjacency arrays.
    Uniform {
        topo: &'a dyn NetTopology,
        num_nodes: usize,
        degree: usize,
    },
}

impl<'a> ChanLayout<'a> {
    /// Picks the layout for `topo`: arithmetic when the runner is in
    /// implicit mode (or the topology has no materialised graph) and the
    /// degree is uniform; CSR otherwise.
    pub(crate) fn new(topo: &'a dyn NetTopology, implicit: bool) -> Self {
        if implicit || topo.explicit_graph().is_none() {
            if let Some(degree) = topo.uniform_degree() {
                return ChanLayout::Uniform {
                    topo,
                    num_nodes: topo.num_nodes(),
                    degree,
                };
            }
        }
        let g = topo.graph();
        let offsets = channel_offsets(g);
        ChanLayout::Csr { g, offsets }
    }

    /// Total directed channels.
    pub(crate) fn num_channels(&self) -> usize {
        match self {
            ChanLayout::Csr { g, offsets } => offsets[g.num_nodes()],
            ChanLayout::Uniform {
                num_nodes, degree, ..
            } => num_nodes * degree,
        }
    }

    /// First channel id owned by node `v` (== CSR `offsets[v]`). Shard
    /// boundaries in the parallel engine are computed from this, so both
    /// layouts cut the channel space at identical node-aligned points.
    pub(crate) fn node_first_channel(&self, v: NodeId) -> usize {
        match self {
            ChanLayout::Csr { offsets, .. } => offsets[v],
            ChanLayout::Uniform { degree, .. } => v * degree,
        }
    }

    /// Channel id of the directed edge `(u, v)`.
    ///
    /// # Panics
    /// Panics if `(u, v)` is not an edge.
    #[inline]
    pub(crate) fn channel_of(&self, u: NodeId, v: NodeId) -> usize {
        match self {
            ChanLayout::Csr { g, offsets } => {
                let port = g
                    .neighbors(u)
                    .binary_search(&(v as u32))
                    .unwrap_or_else(|_| panic!("route step ({u}, {v}) is not an edge")); // analyze: allow(panic-policy, internal invariant needs the offending ids; expect cannot format them)
                offsets[u] + port
            }
            ChanLayout::Uniform { topo, degree, .. } => {
                let mut buf = [0 as NodeId; MAX_PRODUCTIVE];
                let k = topo.neighbors_into(u, &mut buf);
                let port = buf[..k]
                    .binary_search(&v)
                    .unwrap_or_else(|_| panic!("route step ({u}, {v}) is not an edge")); // analyze: allow(panic-policy, internal invariant needs the offending ids; expect cannot format them)
                u * degree + port
            }
        }
    }

    /// Channel id -> (tail, head) endpoints, dense over all channels.
    /// O(channels) — only materialised when a telemetry scoreboard needs
    /// it (the million-node perf path runs telemetry-off and never calls
    /// this).
    pub(crate) fn endpoints(&self) -> Vec<(u32, u32)> {
        match self {
            ChanLayout::Csr { g, offsets } => channel_endpoints(g, offsets),
            ChanLayout::Uniform {
                topo,
                num_nodes,
                degree,
            } => {
                let mut ends = vec![(0u32, 0u32); num_nodes * degree];
                let mut buf = [0 as NodeId; MAX_PRODUCTIVE];
                for v in 0..*num_nodes {
                    let k = topo.neighbors_into(v, &mut buf);
                    debug_assert_eq!(k, *degree, "uniform_degree contract");
                    for (port, &w) in buf[..k].iter().enumerate() {
                        ends[v * degree + port] = (v as u32, w as u32);
                    }
                }
                ends
            }
        }
    }

    /// Head-node lookup for the adaptive runner: a dense table under CSR
    /// (O(channels), as before), algebraic under the uniform layout
    /// (O(1) memory, one neighbor enumeration per lookup).
    pub(crate) fn heads(&self) -> ChanHeads<'a> {
        match self {
            ChanLayout::Csr { g, offsets } => {
                let mut chan_to = vec![0u32; offsets[g.num_nodes()]];
                for v in 0..g.num_nodes() {
                    for (port, &w) in g.neighbors(v).iter().enumerate() {
                        chan_to[offsets[v] + port] = w;
                    }
                }
                ChanHeads::Table(chan_to)
            }
            ChanLayout::Uniform { topo, degree, .. } => ChanHeads::Algebraic {
                topo: *topo,
                degree: *degree,
            },
        }
    }
}

/// Channel id -> head node (the node a popped packet arrives at).
pub(crate) enum ChanHeads<'a> {
    Table(Vec<u32>),
    Algebraic {
        topo: &'a dyn NetTopology,
        degree: usize,
    },
}

impl ChanHeads<'_> {
    #[inline]
    pub(crate) fn head_of(&self, ch: usize) -> NodeId {
        match self {
            ChanHeads::Table(t) => t[ch] as NodeId,
            ChanHeads::Algebraic { topo, degree } => {
                let mut buf = [0 as NodeId; MAX_PRODUCTIVE];
                let k = topo.neighbors_into(ch / degree, &mut buf);
                debug_assert!(ch % degree < k, "uniform_degree contract");
                buf[ch % degree]
            }
        }
    }
}

/// Per-channel queue storage for the frontier engines. `Dense` is the
/// historical layout: one `VecDeque` per channel, O(channels) memory,
/// O(1) access. `Sparse` materialises a [`crate::pool::ChannelMap`]
/// record on first touch and retires it once the channel is idle, so
/// memory tracks **concurrently busy channels** instead of topology
/// size. Both present identical FIFO semantics; the engines drain the
/// same sorted active worklist either way, so results are
/// byte-identical across storage modes.
pub(crate) enum ChanQueues<T> {
    Dense {
        queues: Vec<VecDeque<T>>,
        is_active: Vec<bool>,
        /// Same-cycle credit counts (bounded runner only; empty when the
        /// runner does not track credits).
        incoming: Vec<usize>,
    },
    Sparse(crate::pool::ChannelMap<T>),
}

impl<T> ChanQueues<T> {
    pub(crate) fn new(num_channels: usize, sparse: bool, credits: bool) -> Self {
        if sparse {
            ChanQueues::Sparse(crate::pool::ChannelMap::new())
        } else {
            ChanQueues::Dense {
                queues: (0..num_channels).map(|_| VecDeque::new()).collect(),
                is_active: vec![false; num_channels],
                incoming: if credits {
                    vec![0; num_channels]
                } else {
                    Vec::new()
                },
            }
        }
    }

    #[inline]
    pub(crate) fn len(&self, ch: usize) -> usize {
        match self {
            ChanQueues::Dense { queues, .. } => queues[ch].len(),
            ChanQueues::Sparse(map) => map.get(ch).map_or(0, |r| r.queue.len()),
        }
    }

    #[inline]
    pub(crate) fn front(&self, ch: usize) -> Option<&T> {
        match self {
            ChanQueues::Dense { queues, .. } => queues[ch].front(),
            ChanQueues::Sparse(map) => map.get(ch).and_then(|r| r.queue.front()),
        }
    }

    #[inline]
    pub(crate) fn push_back(&mut self, ch: usize, value: T) {
        match self {
            ChanQueues::Dense { queues, .. } => queues[ch].push_back(value),
            ChanQueues::Sparse(map) => map.ensure(ch).queue.push_back(value),
        }
    }

    #[inline]
    pub(crate) fn pop_front(&mut self, ch: usize) -> Option<T> {
        match self {
            ChanQueues::Dense { queues, .. } => queues[ch].pop_front(),
            ChanQueues::Sparse(map) => map.get_mut(ch).and_then(|r| r.queue.pop_front()),
        }
    }

    /// Marks `ch` on the active worklist; returns `true` when it was not
    /// already there (the caller then pushes it onto the worklist vec).
    #[inline]
    pub(crate) fn activate(&mut self, ch: usize) -> bool {
        match self {
            ChanQueues::Dense { is_active, .. } => {
                if is_active[ch] {
                    false
                } else {
                    is_active[ch] = true;
                    true
                }
            }
            ChanQueues::Sparse(map) => {
                let rec = map.ensure(ch);
                if rec.active {
                    false
                } else {
                    rec.active = true;
                    true
                }
            }
        }
    }

    /// Takes `ch` off the worklist; under sparse storage an idle record
    /// is retired (capacity recycled) so live records track busy
    /// channels.
    #[inline]
    pub(crate) fn deactivate(&mut self, ch: usize) {
        match self {
            ChanQueues::Dense { is_active, .. } => is_active[ch] = false,
            ChanQueues::Sparse(map) => {
                if let Some(rec) = map.get_mut(ch) {
                    rec.active = false;
                }
                map.release_if_idle(ch);
            }
        }
    }

    /// Queue depth plus same-cycle admitted credits (bounded runner's
    /// conservative flow-control test).
    #[inline]
    pub(crate) fn len_plus_incoming(&self, ch: usize) -> usize {
        match self {
            ChanQueues::Dense {
                queues, incoming, ..
            } => queues[ch].len() + incoming[ch],
            ChanQueues::Sparse(map) => map.get(ch).map_or(0, |r| r.queue.len() + r.incoming),
        }
    }

    /// Counts one admitted packet toward `ch` this cycle; returns `true`
    /// on the first credit (the caller then remembers `ch` for the
    /// end-of-cycle reset).
    #[inline]
    pub(crate) fn add_incoming(&mut self, ch: usize) -> bool {
        match self {
            ChanQueues::Dense { incoming, .. } => {
                incoming[ch] += 1;
                incoming[ch] == 1
            }
            ChanQueues::Sparse(map) => {
                let rec = map.ensure(ch);
                rec.incoming += 1;
                rec.incoming == 1
            }
        }
    }

    /// Resets `ch`'s credit count at end of cycle (sparse storage also
    /// retires the record if the channel went fully idle).
    #[inline]
    pub(crate) fn clear_incoming(&mut self, ch: usize) {
        match self {
            ChanQueues::Dense { incoming, .. } => incoming[ch] = 0,
            ChanQueues::Sparse(map) => {
                if let Some(rec) = map.get_mut(ch) {
                    rec.incoming = 0;
                }
                map.release_if_idle(ch);
            }
        }
    }

    /// Peak concurrently materialised channel records: the topology's
    /// channel count under dense storage, the [`ChannelMap`] high-water
    /// mark under sparse.
    ///
    /// [`ChannelMap`]: crate::pool::ChannelMap
    pub(crate) fn peak_records(&self) -> usize {
        match self {
            ChanQueues::Dense { queues, .. } => queues.len(),
            ChanQueues::Sparse(map) => map.peak_live(),
        }
    }

    /// Approximate heap footprint of the store in bytes.
    pub(crate) fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        match self {
            ChanQueues::Dense {
                queues,
                is_active,
                incoming,
            } => {
                queues.capacity() * size_of::<VecDeque<T>>()
                    + queues
                        .iter()
                        .map(|q| q.capacity() * size_of::<T>())
                        .sum::<usize>()
                    + is_active.capacity()
                    + incoming.capacity() * size_of::<usize>()
            }
            ChanQueues::Sparse(map) => map.heap_bytes(),
        }
    }
}

/// Memory accounting for one serial oblivious run — the diagnostic
/// companion [`run_with_mem`] returns alongside the stats. Deliberately
/// **not** part of [`SimStats`] or the telemetry snapshot: storage mode
/// must never perturb results, so the accounting rides on a separate
/// channel that equivalence tests don't compare.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Peak concurrently materialised channel records. Under implicit
    /// (sparse) storage this is bounded by concurrently busy channels —
    /// O(active traffic) — never by topology size; dense storage reports
    /// the full channel count.
    pub peak_channel_records: usize,
    /// Total directed channels of the topology (what dense storage
    /// allocates up front).
    pub num_channels: usize,
    /// Heap bytes held by the channel store at run end.
    pub channel_store_bytes: usize,
    /// Heap bytes held by the workload-keyed route table.
    pub route_table_bytes: usize,
}

/// Like [`run`], but also reports channel-storage memory accounting.
/// Serial only (memory attribution is per-store and the sharded engine
/// owns one store per shard).
///
/// # Panics
/// As [`run`]; additionally panics if `cfg.threads > 1`.
pub fn run_with_mem(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
) -> (SimStats, MemStats) {
    assert!(cfg.threads <= 1, "memory accounting is serial-only");
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );
    let table = RouteTable::for_injections(topo, injections, &crate::faults::FaultPlan::new());
    let mut mem = MemStats::default();
    let stats = run_serial(topo, injections, &cfg, &table, Some(&mut mem));
    (stats, mem)
}

/// Runs the simulation of `injections` (must be sorted by `at`) on
/// `topo`.
///
/// Routes are precomputed once per distinct `(src, dst)` pair into a
/// [`RouteTable`] and packets live in a slab [`PacketPool`], so the per
/// cycle loop allocates nothing in steady state. Channels are serviced
/// in ascending channel-id order — the canonical order the sharded
/// parallel engine ([`SimConfig::with_threads`]) reproduces exactly, so
/// the returned stats (and telemetry snapshots) are identical at every
/// thread count.
///
/// # Panics
/// Panics if injections are not sorted by injection cycle, or reference
/// out-of-range nodes.
///
/// # Examples
/// ```
/// use hb_netsim::topology::{HbRouteOrder, HyperButterflyNet};
/// use hb_netsim::{run, sim::SimConfig, workload};
/// let net = HyperButterflyNet::new(1, 3, HbRouteOrder::CubeFirst).unwrap();
/// let traffic = workload::uniform(48, 10, 0.2, 7);
/// let stats = run(&net, &traffic, SimConfig::default());
/// assert_eq!(stats.delivered, stats.offered);
/// ```
pub fn run(topo: &dyn NetTopology, injections: &[Injection], cfg: SimConfig) -> SimStats {
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );
    let table = RouteTable::for_injections(topo, injections, &crate::faults::FaultPlan::new());
    if cfg.threads > 1 {
        return crate::par::run_sharded(topo, injections, &cfg, RouteSrc::Table(&table), false);
    }
    run_serial(topo, injections, &cfg, &table, None)
}

/// The serial oblivious loop over a prebuilt route table (canonical
/// ascending-channel service order). `mem`, when given, receives the
/// channel-storage accounting at run end.
// analyze: hot(steady-state cycle loop must stay allocation-free; see alloc_free.rs)
fn run_serial(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: &SimConfig,
    table: &RouteTable,
    mem: Option<&mut MemStats>,
) -> SimStats {
    let layout = ChanLayout::new(topo, cfg.implicit);
    let num_channels = layout.num_channels();
    let sparse = cfg.implicit || topo.explicit_graph().is_none();
    let mut queues: ChanQueues<u32> = ChanQueues::new(num_channels, sparse, false);
    let mut pool: PacketPool<Packet> = PacketPool::new();
    // Channels with any queued packet, to avoid scanning all E per cycle.
    let mut active: Vec<usize> = Vec::new();

    let tel = cfg.telemetry.as_ref();
    let mut board = tel.map(|_| Scoreboard::new(layout.endpoints()));
    let mut ts = tel
        .and_then(|t| t.timeseries_config())
        .map(|c| (GlobalTs::new(c, false), LinkTs::new(c, 0, num_channels)));
    let profiling = cfg.profile && tel.is_some();
    let mut prof = ProfCounters::default();

    let mut stats = SimStats {
        offered: injections.len() as u64,
        ..Default::default()
    };
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut next_inject = 0usize;
    let mut in_flight = 0u64;
    let mut cycle = 0u64;

    let enqueue = |queues: &mut ChanQueues<u32>, active: &mut Vec<usize>, ch: usize, key: u32| {
        queues.push_back(ch, key);
        if queues.activate(ch) {
            active.push(ch);
        }
    };

    let mut moved: Vec<(usize, u32)> = Vec::new(); // (next channel, pool key)
    let mut still_active: Vec<usize> = Vec::new();

    while cycle < cfg.max_cycles {
        let injected_before = next_inject;
        let delivered_before = stats.delivered;
        // Inject everything due this cycle.
        while next_inject < injections.len() && injections[next_inject].at == cycle {
            let inj = injections[next_inject];
            let id = next_inject as u64;
            next_inject += 1;
            if let Some(t) = tel {
                t.event(|| Event::PacketInjected {
                    id,
                    src: inj.src as u32,
                    dst: inj.dst as u32,
                    cycle,
                });
            }
            let slot = table
                .slot(inj.src, inj.dst)
                .expect("invariant: route table was built from this exact workload");
            let path = table.path(slot);
            if profiling {
                prof.lookup_inv += 1;
                prof.lookup_work += path.len() as u64;
            }
            if path.len() <= 1 {
                // Self-delivery: zero-latency, zero hops.
                stats.delivered += 1;
                if let Some(t) = tel {
                    t.event(|| Event::PacketDelivered {
                        id,
                        dst: inj.dst as u32,
                        latency: 0,
                        cycle,
                    });
                }
                continue;
            }
            let ch = layout.channel_of(path[0] as NodeId, path[1] as NodeId);
            let key = pool.alloc(Packet {
                id,
                route: slot,
                hop: 0,
                injected_at: cycle,
            });
            enqueue(&mut queues, &mut active, ch, key);
            in_flight += 1;
        }

        // Canonical service order: ascending channel id. This fixes the
        // only order-sensitive effect in the model — the FIFO order in
        // which same-cycle arrivals land on a shared target channel —
        // and is what makes sharded runs byte-identical.
        active.sort_unstable();

        // Queue occupancy peaks right after injections and moves land.
        // This is also the per-cycle sampling point for the time series:
        // every active channel has a non-empty queue here, so a link
        // sample is the depth on an occupied cycle.
        let mut cycle_peak = 0usize;
        if let Some(b) = board.as_mut() {
            for &ch in &active {
                let len = queues.len(ch);
                b.peak[ch] = b.peak[ch].max(len);
                cycle_peak = cycle_peak.max(len);
                if let Some((_, lt)) = ts.as_mut() {
                    lt.observe(ch, cycle, len as u64);
                }
            }
        } else {
            cycle_peak = active.iter().map(|&ch| queues.len(ch)).max().unwrap_or(0);
        }
        stats.peak_queue = stats.peak_queue.max(cycle_peak);
        let cycle_active = active.len();

        // Advance one packet per active channel (two-phase: collect moves
        // first so a packet moves at most one hop per cycle).
        moved.clear();
        still_active.clear();
        for &ch in &active {
            if profiling {
                prof.service_inv += 1;
                prof.service_work += queues.len(ch) as u64;
            }
            if let Some(key) = queues.pop_front(ch) {
                let mut p = *pool.get(key);
                p.hop += 1;
                let path = table.path(p.route);
                let here = path[p.hop as usize];
                if let Some(b) = board.as_mut() {
                    b.busy[ch] += 1;
                    b.fwd[ch] += 1;
                    let (from, to) = b.ends[ch];
                    tel.expect("invariant: a scoreboard is only handed out with telemetry on")
                        .event(|| Event::PacketHop {
                            id: p.id,
                            from,
                            to,
                            cycle: cycle + 1,
                        });
                }
                if p.hop as usize + 1 == path.len() {
                    // Arrived.
                    let latency = cycle + 1 - p.injected_at;
                    total_latency += latency;
                    total_hops += u64::from(p.hop);
                    latency_samples += 1;
                    stats.max_latency = stats.max_latency.max(latency);
                    stats.delivered += 1;
                    in_flight -= 1;
                    pool.free(key);
                    if let Some(b) = board.as_mut() {
                        b.deliver(latency, u64::from(p.hop));
                        tel.expect("invariant: a scoreboard is only handed out with telemetry on")
                            .event(|| Event::PacketDelivered {
                                id: p.id,
                                dst: here,
                                latency,
                                cycle: cycle + 1,
                            });
                    }
                } else {
                    let next = path[p.hop as usize + 1];
                    *pool.get_mut(key) = p;
                    moved.push((layout.channel_of(here as NodeId, next as NodeId), key));
                }
            }
            if queues.len(ch) == 0 {
                queues.deactivate(ch);
            } else {
                still_active.push(ch);
            }
        }
        std::mem::swap(&mut active, &mut still_active);
        for &(ch, key) in &moved {
            enqueue(&mut queues, &mut active, ch, key);
        }

        if let Some((gt, _)) = ts.as_mut() {
            gt.record(
                cycle,
                in_flight,
                (next_inject - injected_before) as u64,
                stats.delivered - delivered_before,
                cycle_peak as u64,
                cycle_active as u64,
            );
        }

        cycle += 1;

        if cfg.stop_when_drained && in_flight == 0 && next_inject == injections.len() {
            break;
        }
    }

    stats.cycles = cycle;
    // Stranded = still queued plus never injected (cycle limit reached
    // before their injection time): delivered + stranded == offered.
    stats.stranded = in_flight + (injections.len() - next_inject) as u64;
    if latency_samples > 0 {
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_latency = total_latency as f64 / latency_samples as f64;
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_hops = total_hops as f64 / latency_samples as f64;
    }
    debug_assert_eq!(
        stats.delivered + stats.stranded,
        stats.offered,
        "packet conservation"
    );
    if let Some(m) = mem {
        m.peak_channel_records = queues.peak_records();
        m.num_channels = num_channels;
        m.channel_store_bytes = queues.heap_bytes();
        m.route_table_bytes = table.heap_bytes();
    }
    if let (Some(t), Some(b)) = (tel, board) {
        if profiling {
            prof.finish(
                t,
                Some((table.num_pairs() as u64, table.total_route_nodes() as u64)),
            );
        }
        if let Some((gt, lt)) = ts.take() {
            lt.merge_into(t, &b.ends);
            gt.merge_into(t);
        }
        b.finish(t, &stats);
        t.detect_congestion(stats.cycles);
    }
    stats
}

/// Runs the oblivious simulation with **bounded queues and
/// backpressure**: each channel queue holds at most `capacity` packets; a
/// packet advances only if its next queue has room (head-of-line
/// blocking, credit-style flow control). Injection fails when the first
/// queue is full — such packets are dropped and counted in `stranded`
/// (delivered + stranded == offered still holds).
///
/// This is the realistic finite-buffer router model; the unbounded
/// [`run`] measures latency-versus-load without loss, this one measures
/// loss and saturation onset.
///
/// **Deadlock**: finite buffers plus cyclic channel dependencies can
/// deadlock (the classic wormhole/store-and-forward hazard — the level
/// cycle of the butterfly makes such cycles possible). A deadlocked run
/// simply hits `max_cycles` with `stranded > 0`; detecting/avoiding
/// deadlock (virtual channels, bubble routing) is out of scope for this
/// reproduction and flagged as future work in DESIGN.md.
///
/// # Panics
/// As [`run`].
pub fn run_bounded(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
    capacity: usize,
) -> SimStats {
    let table = RouteTable::for_injections(topo, injections, &crate::faults::FaultPlan::new());
    run_bounded_impl(
        topo,
        injections,
        &cfg,
        capacity,
        false,
        RouteSrc::Table(&table),
    )
}

/// Reference **full-sweep** implementation of [`run_bounded`]: the same
/// model, but each cycle scans every channel in ascending id order
/// instead of draining the active worklist — O(channels) per cycle
/// regardless of traffic. Retained as the differential-testing oracle
/// that pins the frontier engine byte-identical (stats, counters,
/// histograms, link stats, profiles, traces); not intended for large
/// topologies.
///
/// # Panics
/// As [`run_bounded`].
pub fn run_bounded_sweep(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
    capacity: usize,
) -> SimStats {
    let table = RouteTable::for_injections(topo, injections, &crate::faults::FaultPlan::new());
    run_bounded_impl(
        topo,
        injections,
        &cfg,
        capacity,
        true,
        RouteSrc::Table(&table),
    )
}

/// Shared bounded-queue engine. `sweep` selects how the per-cycle
/// service set is enumerated; both modes visit exactly the non-empty
/// channels in ascending id order, so every order-sensitive effect
/// (FIFO landing order on shared target channels, trace event order,
/// profile work counts) coincides byte-for-byte.
///
/// With [`RouteSrc::Churn`] routes (a fault-timeline run,
/// [`crate::run_bounded_with_timeline`]) an injection whose compiled
/// route is empty is **unroutable** under the plan in force at its
/// cycle: refused at admission, counted in `sim.unroutable` and
/// `stranded`. Detour *attribution* stays the flight/sharded engines'
/// job — the bounded model only accounts deliverability.
// analyze: hot(bounded-queue cycle loop must stay allocation-free; see alloc_free.rs)
pub(crate) fn run_bounded_impl(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: &SimConfig,
    capacity: usize,
    sweep: bool,
    routes: RouteSrc<'_>,
) -> SimStats {
    assert!(capacity >= 1, "queues need capacity >= 1");
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );
    let layout = ChanLayout::new(topo, cfg.implicit);
    let num_channels = layout.num_channels();
    let sparse = cfg.implicit || topo.explicit_graph().is_none();
    let mut queues: ChanQueues<Packet> = ChanQueues::new(num_channels, sparse, true);
    // Frontier worklist: exactly the non-empty channels (maintained
    // incrementally; the sweep rebuilds the same set by scanning).
    let mut active: Vec<usize> = Vec::new();
    let mut order: Vec<usize> = Vec::new();
    let mut touched: Vec<usize> = Vec::new(); // channels with credits to reset
    let mut arrivals: Vec<(usize, Packet)> = Vec::new();

    let tel = cfg.telemetry.as_ref();
    let mut board = tel.map(|_| Scoreboard::new(layout.endpoints()));
    let mut ts = tel
        .and_then(|t| t.timeseries_config())
        .map(|c| (GlobalTs::new(c, false), LinkTs::new(c, 0, num_channels)));
    let profiling = cfg.profile && tel.is_some();
    let mut prof = ProfCounters::default();

    let mut stats = SimStats {
        offered: injections.len() as u64,
        ..Default::default()
    };
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut next_inject = 0usize;
    let mut in_flight = 0u64;
    let mut dropped = 0u64;
    let mut unroutable = 0u64;
    let mut cycle = 0u64;

    while cycle < cfg.max_cycles {
        let injected_before = next_inject;
        let delivered_before = stats.delivered;
        while next_inject < injections.len() && injections[next_inject].at == cycle {
            let idx = next_inject;
            let inj = injections[idx];
            let id = idx as u64;
            next_inject += 1;
            if let Some(t) = tel {
                t.event(|| Event::PacketInjected {
                    id,
                    src: inj.src as u32,
                    dst: inj.dst as u32,
                    cycle,
                });
            }
            let slot = routes
                .slot_for(idx, inj.src, inj.dst)
                .expect("invariant: route table was built from this exact workload");
            let path = routes.path(slot);
            if profiling {
                prof.lookup_inv += 1;
                prof.lookup_work += path.len() as u64;
            }
            if path.is_empty() {
                // No survivor route under the plan in force at this
                // cycle (churn runs only): refused at admission.
                unroutable += 1;
                if let Some(t) = tel {
                    t.event(|| Event::PacketDropped {
                        id,
                        // analyze: allow(narrowing-cast, node ids < 2^32 by route-table construction)
                        at: inj.src as u32,
                        cycle,
                    });
                }
                continue;
            }
            if path.len() == 1 {
                stats.delivered += 1;
                if let Some(t) = tel {
                    t.event(|| Event::PacketDelivered {
                        id,
                        dst: inj.dst as u32,
                        latency: 0,
                        cycle,
                    });
                }
                continue;
            }
            let ch = layout.channel_of(path[0] as NodeId, path[1] as NodeId);
            if queues.len(ch) >= capacity {
                dropped += 1; // source buffer full: injection refused
                if let Some(t) = tel {
                    t.event(|| Event::PacketDropped {
                        id,
                        at: inj.src as u32,
                        cycle,
                    });
                }
                continue;
            }
            queues.push_back(
                ch,
                Packet {
                    id,
                    route: slot,
                    hop: 0,
                    injected_at: cycle,
                },
            );
            if !sweep && queues.activate(ch) {
                active.push(ch);
            }
            in_flight += 1;
        }

        // The per-cycle service set: non-empty channels, ascending.
        order.clear();
        if sweep {
            order.extend((0..num_channels).filter(|&ch| queues.len(ch) > 0));
        } else {
            active.sort_unstable();
            order.extend_from_slice(&active);
        }

        let mut cycle_peak = 0usize;
        let mut cycle_active = 0usize;
        if let Some(b) = board.as_mut() {
            for &ch in &order {
                let len = queues.len(ch);
                b.peak[ch] = b.peak[ch].max(len);
                cycle_peak = cycle_peak.max(len);
                cycle_active += 1;
                if let Some((_, lt)) = ts.as_mut() {
                    lt.observe(ch, cycle, len as u64);
                }
            }
        } else {
            cycle_peak = order.iter().map(|&ch| queues.len(ch)).max().unwrap_or(0);
        }
        stats.peak_queue = stats.peak_queue.max(cycle_peak);

        // Two-phase advance: a head packet moves only if its target queue
        // currently has room; room freed this cycle becomes visible next
        // cycle (conservative credit model).
        for &ch in &order {
            let Some(front) = queues.front(ch) else {
                continue;
            };
            if profiling {
                prof.service_inv += 1;
                prof.service_work += queues.len(ch) as u64;
            }
            if let Some(b) = board.as_mut() {
                b.busy[ch] += 1;
            }
            let hop = front.hop as usize;
            let path = routes.path(front.route);
            let arriving_last = hop + 2 == path.len();
            if arriving_last {
                let mut p = queues
                    .pop_front(ch)
                    .expect("invariant: channel was queued non-empty this cycle");
                p.hop += 1;
                let latency = cycle + 1 - p.injected_at;
                total_latency += latency;
                total_hops += p.hop as u64;
                latency_samples += 1;
                stats.max_latency = stats.max_latency.max(latency);
                stats.delivered += 1;
                in_flight -= 1;
                if let Some(b) = board.as_mut() {
                    b.fwd[ch] += 1;
                    b.deliver(latency, p.hop as u64);
                    let (from, to) = b.ends[ch];
                    let t =
                        tel.expect("invariant: a scoreboard is only handed out with telemetry on");
                    t.event(|| Event::PacketHop {
                        id: p.id,
                        from,
                        to,
                        cycle: cycle + 1,
                    });
                    t.event(|| Event::PacketDelivered {
                        id: p.id,
                        dst: to,
                        latency,
                        cycle: cycle + 1,
                    });
                }
            } else {
                let here = path[hop + 1] as NodeId;
                let next = path[hop + 2] as NodeId;
                let next_ch = layout.channel_of(here, next);
                if queues.len_plus_incoming(next_ch) < capacity {
                    let mut p = queues
                        .pop_front(ch)
                        .expect("invariant: channel was queued non-empty this cycle");
                    p.hop += 1;
                    if queues.add_incoming(next_ch) {
                        touched.push(next_ch);
                    }
                    if let Some(b) = board.as_mut() {
                        b.fwd[ch] += 1;
                        let (from, to) = b.ends[ch];
                        tel.expect("invariant: a scoreboard is only handed out with telemetry on")
                            .event(|| Event::PacketHop {
                                id: p.id,
                                from,
                                to,
                                cycle: cycle + 1,
                            });
                    }
                    arrivals.push((next_ch, p));
                }
                // else: head-of-line blocked; wait.
            }
        }
        if !sweep {
            // Drop drained channels from the worklist before arrivals
            // land (an arrival re-activates its channel below).
            active.retain(|&ch| {
                if queues.len(ch) > 0 {
                    true
                } else {
                    queues.deactivate(ch);
                    false
                }
            });
        }
        for (ch, p) in arrivals.drain(..) {
            queues.push_back(ch, p);
            if !sweep && queues.activate(ch) {
                active.push(ch);
            }
        }
        for &ch in &touched {
            queues.clear_incoming(ch);
        }
        touched.clear();
        if let Some((gt, _)) = ts.as_mut() {
            gt.record(
                cycle,
                in_flight,
                (next_inject - injected_before) as u64,
                stats.delivered - delivered_before,
                cycle_peak as u64,
                cycle_active as u64,
            );
        }
        cycle += 1;
        if cfg.stop_when_drained && in_flight == 0 && next_inject == injections.len() {
            break;
        }
    }
    stats.cycles = cycle;
    stats.stranded = dropped + unroutable + in_flight + (injections.len() - next_inject) as u64;
    if latency_samples > 0 {
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_latency = total_latency as f64 / latency_samples as f64;
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_hops = total_hops as f64 / latency_samples as f64;
    }
    debug_assert_eq!(
        stats.delivered + stats.stranded,
        stats.offered,
        "packet conservation"
    );
    if let (Some(t), Some(b)) = (tel, board) {
        if profiling {
            prof.finish(
                t,
                Some((routes.num_pairs() as u64, routes.total_route_nodes() as u64)),
            );
        }
        t.counter("sim.dropped").add(dropped);
        if routes.is_churn() {
            t.counter("sim.unroutable").add(unroutable);
        }
        if let Some((gt, lt)) = ts.take() {
            lt.merge_into(t, &b.ends);
            gt.merge_into(t);
        }
        b.finish(t, &stats);
        t.detect_congestion(stats.cycles);
    }
    stats
}

/// A packet in the adaptive simulator: no fixed route, only a
/// destination.
#[derive(Clone, Debug)]
struct AdaptivePacket {
    /// Injection index, used as the trace id.
    id: u64,
    dst: NodeId,
    hops: u32,
    injected_at: u64,
}

/// Runs a **minimal adaptive** simulation: at every hop the packet picks,
/// among the topology's productive next hops (neighbors on some shortest
/// path, [`NetTopology::productive_hops`]), the one whose outgoing queue
/// is currently shortest. Hop counts stay minimal; only the *choice* of
/// shortest path adapts to congestion — the ablation partner of the
/// oblivious [`run`].
///
/// # Panics
/// As [`run`]; additionally panics if a topology reports no productive
/// hop for an undelivered packet (which would contradict shortest-path
/// reachability).
pub fn run_adaptive(topo: &dyn NetTopology, injections: &[Injection], cfg: SimConfig) -> SimStats {
    run_adaptive_impl(topo, injections, &cfg, None)
}

/// The adaptive engine body. `admission`, set by
/// [`crate::run_adaptive_with_timeline`], gates injections on the
/// fault-timeline routes compiled for their cycle: a packet whose
/// compiled route is empty is unroutable and refused. In-transit
/// adaptivity stays **fault-blind** — the productive-hop scan does not
/// consult the plan (documented limitation; the oblivious churn engines
/// are the fault-aware ones).
// analyze: hot(adaptive cycle loop must stay allocation-free; see alloc_free.rs)
pub(crate) fn run_adaptive_impl(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: &SimConfig,
    admission: Option<&crate::routes::ChurnRoutes>,
) -> SimStats {
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );
    let layout = ChanLayout::new(topo, cfg.implicit);
    let num_channels = layout.num_channels();
    // Channel id -> head node (the node a popped packet arrives at).
    let chan_to = layout.heads();
    let sparse = cfg.implicit || topo.explicit_graph().is_none();
    let mut queues: ChanQueues<AdaptivePacket> = ChanQueues::new(num_channels, sparse, false);
    let mut active: Vec<usize> = Vec::new();

    // Least-loaded productive channel out of `from` toward `dst`. The
    // productive set is written into the caller's stack buffer — no heap
    // allocation per hop. Ties keep the first (lowest-channel) minimum,
    // matching the historical Vec-based iteration order exactly.
    let choose = |queues: &ChanQueues<AdaptivePacket>,
                  buf: &mut [NodeId; MAX_PRODUCTIVE],
                  from: NodeId,
                  dst: NodeId|
     -> (usize, usize) {
        let k = topo.productive_hops_into(from, dst, buf);
        let ch = buf[..k]
            .iter()
            .map(|&w| layout.channel_of(from, w))
            .min_by_key(|&ch| queues.len(ch))
            .expect("invariant: a productive hop exists for any undelivered packet");
        (ch, k)
    };

    let tel = cfg.telemetry.as_ref();
    let mut board = tel.map(|_| Scoreboard::new(layout.endpoints()));
    let mut ts = tel
        .and_then(|t| t.timeseries_config())
        .map(|c| (GlobalTs::new(c, false), LinkTs::new(c, 0, num_channels)));
    let profiling = cfg.profile && tel.is_some();
    let mut prof = ProfCounters::default();

    let mut stats = SimStats {
        offered: injections.len() as u64,
        ..Default::default()
    };
    let mut total_latency = 0u64;
    let mut total_hops = 0u64;
    let mut latency_samples = 0u64;
    let mut next_inject = 0usize;
    let mut in_flight = 0u64;
    let mut unroutable = 0u64;
    let mut cycle = 0u64;
    // Steady-state scratch, reused every cycle: once these reach their
    // high-water capacity the simulation loop performs no heap
    // allocation at all (see the counting-allocator test).
    let mut hop_buf = [0 as NodeId; MAX_PRODUCTIVE];
    let mut moved: Vec<(NodeId, AdaptivePacket)> = Vec::new(); // (arrival node, packet)
    let mut still_active: Vec<usize> = Vec::new();

    while cycle < cfg.max_cycles {
        let injected_before = next_inject;
        let delivered_before = stats.delivered;
        while next_inject < injections.len() && injections[next_inject].at == cycle {
            let idx = next_inject;
            let inj = injections[idx];
            let id = idx as u64;
            next_inject += 1;
            if let Some(t) = tel {
                t.event(|| Event::PacketInjected {
                    id,
                    src: inj.src as u32,
                    dst: inj.dst as u32,
                    cycle,
                });
            }
            if let Some(churn) = admission {
                if churn.path(churn.slot_of(idx)).is_empty() {
                    // Unroutable under the plan in force at this cycle
                    // (e.g. a faulty endpoint): refused at admission.
                    unroutable += 1;
                    if let Some(t) = tel {
                        t.event(|| Event::PacketDropped {
                            id,
                            // analyze: allow(narrowing-cast, node ids < 2^32 by route-table construction)
                            at: inj.src as u32,
                            cycle,
                        });
                    }
                    continue;
                }
            }
            if inj.src == inj.dst {
                stats.delivered += 1;
                if let Some(t) = tel {
                    t.event(|| Event::PacketDelivered {
                        id,
                        dst: inj.dst as u32,
                        latency: 0,
                        cycle,
                    });
                }
                continue;
            }
            let (ch, scanned) = choose(&queues, &mut hop_buf, inj.src, inj.dst);
            if profiling {
                prof.scan_inv += 1;
                prof.scan_work += scanned as u64;
            }
            queues.push_back(
                ch,
                AdaptivePacket {
                    id,
                    dst: inj.dst,
                    hops: 0,
                    injected_at: cycle,
                },
            );
            if queues.activate(ch) {
                active.push(ch);
            }
            in_flight += 1;
        }

        let mut cycle_peak = 0usize;
        if let Some(b) = board.as_mut() {
            for &ch in &active {
                let len = queues.len(ch);
                b.peak[ch] = b.peak[ch].max(len);
                cycle_peak = cycle_peak.max(len);
                if let Some((_, lt)) = ts.as_mut() {
                    lt.observe(ch, cycle, len as u64);
                }
            }
        } else {
            cycle_peak = active.iter().map(|&ch| queues.len(ch)).max().unwrap_or(0);
        }
        stats.peak_queue = stats.peak_queue.max(cycle_peak);
        let cycle_active = active.len();

        still_active.clear();
        for &ch in &active {
            if profiling {
                prof.service_inv += 1;
                prof.service_work += queues.len(ch) as u64;
            }
            if let Some(mut p) = queues.pop_front(ch) {
                p.hops += 1;
                let here = chan_to.head_of(ch);
                if let Some(b) = board.as_mut() {
                    b.busy[ch] += 1;
                    b.fwd[ch] += 1;
                    let (from, to) = b.ends[ch];
                    tel.expect("invariant: a scoreboard is only handed out with telemetry on")
                        .event(|| Event::PacketHop {
                            id: p.id,
                            from,
                            to,
                            cycle: cycle + 1,
                        });
                }
                if here == p.dst {
                    let latency = cycle + 1 - p.injected_at;
                    total_latency += latency;
                    total_hops += p.hops as u64;
                    latency_samples += 1;
                    stats.max_latency = stats.max_latency.max(latency);
                    stats.delivered += 1;
                    in_flight -= 1;
                    if let Some(b) = board.as_mut() {
                        b.deliver(latency, p.hops as u64);
                        tel.expect("invariant: a scoreboard is only handed out with telemetry on")
                            .event(|| Event::PacketDelivered {
                                id: p.id,
                                dst: here as u32,
                                latency,
                                cycle: cycle + 1,
                            });
                    }
                } else {
                    moved.push((here, p));
                }
            }
            if queues.len(ch) == 0 {
                queues.deactivate(ch);
            } else {
                still_active.push(ch);
            }
        }
        std::mem::swap(&mut active, &mut still_active);
        for (here, p) in moved.drain(..) {
            let (ch, scanned) = choose(&queues, &mut hop_buf, here, p.dst);
            if profiling {
                prof.scan_inv += 1;
                prof.scan_work += scanned as u64;
            }
            queues.push_back(ch, p);
            if queues.activate(ch) {
                active.push(ch);
            }
        }
        if let Some((gt, _)) = ts.as_mut() {
            gt.record(
                cycle,
                in_flight,
                (next_inject - injected_before) as u64,
                stats.delivered - delivered_before,
                cycle_peak as u64,
                cycle_active as u64,
            );
        }
        cycle += 1;
        if cfg.stop_when_drained && in_flight == 0 && next_inject == injections.len() {
            break;
        }
    }

    stats.cycles = cycle;
    // Stranded = refused at admission plus still queued plus never
    // injected (cycle limit reached before their injection time):
    // delivered + stranded == offered.
    stats.stranded = unroutable + in_flight + (injections.len() - next_inject) as u64;
    if latency_samples > 0 {
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_latency = total_latency as f64 / latency_samples as f64;
        // analyze: allow(float-determinism, one division over exact integer totals at run end)
        stats.avg_hops = total_hops as f64 / latency_samples as f64;
    }
    debug_assert_eq!(
        stats.delivered + stats.stranded,
        stats.offered,
        "packet conservation"
    );
    if let (Some(t), Some(b)) = (tel, board) {
        if profiling {
            prof.finish(t, None);
        }
        if admission.is_some() {
            t.counter("sim.unroutable").add(unroutable);
        }
        if let Some((gt, lt)) = ts.take() {
            lt.merge_into(t, &b.ends);
            gt.merge_into(t);
        }
        b.finish(t, &stats);
        t.detect_congestion(stats.cycles);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{HbRouteOrder, HyperButterflyNet, HypercubeNet};

    #[test]
    fn single_packet_latency_is_distance() {
        let t = HypercubeNet::new(4).unwrap();
        let inj = [Injection {
            src: 0,
            dst: 0b1111,
            at: 0,
        }];
        let s = run(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, 1);
        assert_eq!(s.stranded, 0);
        assert_eq!(s.avg_latency, 4.0); // 4 hops, no contention
        assert_eq!(s.avg_hops, 4.0);
    }

    #[test]
    fn contention_serialises_on_shared_channel() {
        // Two packets injected the same cycle over the same first channel.
        let t = HypercubeNet::new(3).unwrap();
        let inj = [
            Injection {
                src: 0,
                dst: 1,
                at: 0,
            },
            Injection {
                src: 0,
                dst: 1,
                at: 0,
            },
        ];
        let s = run(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, 2);
        // One arrives at cycle 1, the other queues one cycle: latencies 1, 2.
        assert_eq!(s.avg_latency, 1.5);
        assert_eq!(s.max_latency, 2);
        assert_eq!(s.peak_queue, 2);
    }

    #[test]
    fn self_addressed_packets_deliver_instantly() {
        let t = HypercubeNet::new(3).unwrap();
        let inj = [Injection {
            src: 5,
            dst: 5,
            at: 0,
        }];
        let s = run(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, 1);
        assert_eq!(s.avg_latency, 0.0);
    }

    #[test]
    fn cycle_limit_strands_packets() {
        let t = HypercubeNet::new(4).unwrap();
        let inj = [Injection {
            src: 0,
            dst: 0b1111,
            at: 0,
        }];
        let s = run(&t, &inj, SimConfig::bounded(2));
        assert_eq!(s.delivered, 0);
        assert_eq!(s.stranded, 1);
        assert_eq!(s.cycles, 2);
    }

    #[test]
    fn conservation_holds_under_cycle_limit_in_all_simulators() {
        // Stop mid-flight at several cut points: delivered + stranded
        // must equal offered no matter where the limit lands (some
        // packets queued, some in flight, some never injected).
        let t = HypercubeNet::new(4).unwrap();
        let inj: Vec<Injection> = (0..24)
            .map(|i| Injection {
                src: i % 16,
                dst: (i * 5 + 3) % 16,
                at: (i / 8) as u64,
            })
            .collect();
        for limit in [0, 1, 2, 3, 5, 8] {
            let s = run(&t, &inj, SimConfig::bounded(limit));
            assert_eq!(s.delivered + s.stranded, s.offered, "run, limit {limit}");
            let sa = run_adaptive(&t, &inj, SimConfig::bounded(limit));
            assert_eq!(
                sa.delivered + sa.stranded,
                sa.offered,
                "adaptive, limit {limit}"
            );
            let sb = run_bounded(&t, &inj, SimConfig::bounded(limit), 2);
            assert_eq!(
                sb.delivered + sb.stranded,
                sb.offered,
                "bounded, limit {limit}"
            );
        }
    }

    #[test]
    fn hb_topology_simulates_end_to_end() {
        let t = HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap();
        let n = t.num_nodes();
        let inj: Vec<Injection> = (0..n)
            .map(|v| Injection {
                src: v,
                dst: (v * 7 + 3) % n,
                at: 0,
            })
            .collect();
        let s = run(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, n as u64);
        assert_eq!(s.stranded, 0);
        assert!(s.avg_latency >= s.avg_hops);
    }

    #[test]
    fn telemetry_off_and_on_produce_identical_stats() {
        let t = HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap();
        let n = t.num_nodes();
        let inj: Vec<Injection> = (0..n)
            .map(|v| Injection {
                src: v,
                dst: (v * 7 + 3) % n,
                at: 0,
            })
            .collect();
        let off = run(&t, &inj, SimConfig::default());
        let tel = hb_telemetry::Telemetry::with_trace(64);
        let on = run(&t, &inj, SimConfig::default().with_telemetry(tel.clone()));
        assert_eq!(off, on, "telemetry must not perturb the simulation");

        // And the instruments reflect the run faithfully.
        assert_eq!(tel.counter("sim.offered").get(), on.offered);
        assert_eq!(tel.counter("sim.delivered").get(), on.delivered);
        assert_eq!(tel.counter("sim.cycles").get(), on.cycles);
        let lat = tel.histogram("sim.latency").unwrap();
        assert_eq!(lat.count(), on.delivered);
        assert_eq!(lat.max(), Some(on.max_latency));
        let q = lat.quantiles().unwrap();
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99 && q.p99 <= q.max);
        // Every hop of every delivered packet crossed exactly one link.
        let hops = tel.histogram("sim.hops").unwrap();
        assert_eq!(tel.links().total_forwarded(), hops.sum());
        assert!(!tel.events().is_empty());
        assert_eq!(tel.snapshot().cycles, Some(on.cycles));
    }

    #[test]
    fn telemetry_peak_queue_matches_stats() {
        let t = HypercubeNet::new(3).unwrap();
        let inj: Vec<Injection> = (0..6)
            .map(|_| Injection {
                src: 0,
                dst: 1,
                at: 0,
            })
            .collect();
        let tel = hb_telemetry::Telemetry::summary();
        let s = run(&t, &inj, SimConfig::default().with_telemetry(tel.clone()));
        let links = tel.links();
        let per_link_peak = links.iter().map(|(_, r)| r.peak_queue).max().unwrap();
        assert_eq!(per_link_peak, s.peak_queue);
        assert_eq!(links.get(0, 1).unwrap().forwarded, 6);
        assert!(tel.events().is_empty(), "summary level records no trace");
    }

    #[test]
    fn bounded_queues_preserve_conservation_and_can_drop() {
        let t = HypercubeNet::new(3).unwrap();
        // Ten packets into one channel of capacity 2, same cycle.
        let inj: Vec<Injection> = (0..10)
            .map(|_| Injection {
                src: 0,
                dst: 1,
                at: 0,
            })
            .collect();
        let s = run_bounded(&t, &inj, SimConfig::default(), 2);
        assert_eq!(s.delivered + s.stranded, s.offered);
        assert_eq!(s.delivered, 2); // only the buffered two survive
        assert_eq!(s.stranded, 8);
    }

    #[test]
    fn bounded_run_counts_and_traces_drops() {
        let t = HypercubeNet::new(3).unwrap();
        let inj: Vec<Injection> = (0..10)
            .map(|_| Injection {
                src: 0,
                dst: 1,
                at: 0,
            })
            .collect();
        let tel = hb_telemetry::Telemetry::with_trace(64);
        let s = run_bounded(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            2,
        );
        assert_eq!(s.delivered, 2);
        assert_eq!(tel.counter("sim.dropped").get(), 8);
        let drops = tel
            .events()
            .iter()
            .filter(|e| matches!(e, hb_telemetry::Event::PacketDropped { .. }))
            .count();
        assert_eq!(drops, 8);
    }

    #[test]
    fn bounded_queues_match_unbounded_at_low_load() {
        let t = HypercubeNet::new(4).unwrap();
        let inj = [Injection {
            src: 0,
            dst: 0b1111,
            at: 0,
        }];
        let b = run_bounded(&t, &inj, SimConfig::default(), 4);
        assert_eq!(b.delivered, 1);
        assert_eq!(b.avg_latency, 4.0);
    }

    #[test]
    fn backpressure_blocks_but_eventually_drains() {
        let t = HypercubeNet::new(3).unwrap();
        // Two packets share the full route 0 -> 1 -> 3; capacity 1 forces
        // the second to wait at each stage but both must arrive.
        let inj = [
            Injection {
                src: 0,
                dst: 3,
                at: 0,
            },
            Injection {
                src: 0,
                dst: 3,
                at: 1,
            },
        ];
        let s = run_bounded(&t, &inj, SimConfig::default(), 1);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.stranded, 0);
    }

    #[test]
    fn adaptive_matches_oblivious_hops_at_zero_load() {
        let t = HypercubeNet::new(4).unwrap();
        let inj = [Injection {
            src: 0,
            dst: 0b1111,
            at: 0,
        }];
        let s = run_adaptive(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, 1);
        assert_eq!(s.avg_hops, 4.0); // adaptive stays minimal
        assert_eq!(s.avg_latency, 4.0);
    }

    #[test]
    fn adaptive_spreads_contention() {
        // Many packets from node 0 to the antipode: oblivious serialises
        // on one fixed route; adaptive fans out over disjoint shortest
        // paths and must not be slower.
        let t = HypercubeNet::new(4).unwrap();
        let inj: Vec<Injection> = (0..8)
            .map(|_| Injection {
                src: 0,
                dst: 0b1111,
                at: 0,
            })
            .collect();
        let obl = run(&t, &inj, SimConfig::default());
        let ada = run_adaptive(&t, &inj, SimConfig::default());
        assert_eq!(ada.delivered, 8);
        assert!(
            ada.avg_latency <= obl.avg_latency,
            "{} vs {}",
            ada.avg_latency,
            obl.avg_latency
        );
        assert_eq!(ada.avg_hops, 4.0, "minimality preserved");
    }

    #[test]
    fn adaptive_populates_link_stats() {
        let t = HypercubeNet::new(4).unwrap();
        let inj: Vec<Injection> = (0..8)
            .map(|_| Injection {
                src: 0,
                dst: 0b1111,
                at: 0,
            })
            .collect();
        let tel = hb_telemetry::Telemetry::summary();
        let s = run_adaptive(&t, &inj, SimConfig::default().with_telemetry(tel.clone()));
        assert_eq!(s.delivered, 8);
        // Minimal adaptivity: every packet takes exactly 4 hops.
        assert_eq!(tel.links().total_forwarded(), 8 * 4);
    }

    #[test]
    fn adaptive_works_on_hyper_butterfly() {
        let t = HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap();
        let n = t.num_nodes();
        let inj: Vec<Injection> = (0..n)
            .map(|v| Injection {
                src: v,
                dst: (v * 31 + 5) % n,
                at: 0,
            })
            .collect();
        let s = run_adaptive(&t, &inj, SimConfig::default());
        assert_eq!(s.delivered, n as u64);
        assert_eq!(s.stranded, 0);
    }

    #[test]
    fn timeseries_records_windowed_series() {
        let t = HypercubeNet::new(3).unwrap();
        // Six packets through one channel: occupied for six straight
        // cycles, queue draining 6, 5, ..., 1.
        let inj: Vec<Injection> = (0..6)
            .map(|_| Injection {
                src: 0,
                dst: 1,
                at: 0,
            })
            .collect();
        let tel = hb_telemetry::Telemetry::summary();
        tel.enable_timeseries(hb_telemetry::TsConfig::new(2));
        let s = run(&t, &inj, SimConfig::default().with_telemetry(tel.clone()));
        let series = tel.series();
        assert_eq!(series["sim.injected"].total(), s.offered);
        assert_eq!(series["sim.delivered"].total(), s.delivered);
        let link = &series["link.0->1.queue"];
        assert_eq!(link.high_watermark(), Some((s.peak_queue as u64, 0)));
        // One sample per occupied cycle, windows of two cycles each.
        assert_eq!(link.windows().map(|w| w.count).sum::<u64>(), 6);
        assert_eq!(
            series["sim.queue.max"].high_watermark().map(|(v, _)| v),
            Some(s.peak_queue as u64)
        );
        // The network drains monotonically: in-flight ends at zero.
        let fly = &series["sim.in_flight"];
        assert_eq!(fly.windows().next_back().unwrap().last, 0);
    }

    #[test]
    fn timeseries_stays_empty_when_not_enabled() {
        let t = HypercubeNet::new(3).unwrap();
        let inj = [Injection {
            src: 0,
            dst: 1,
            at: 0,
        }];
        let tel = hb_telemetry::Telemetry::summary();
        run(&t, &inj, SimConfig::default().with_telemetry(tel.clone()));
        let snap = tel.snapshot();
        assert!(snap.timeseries.is_empty());
        assert!(snap.congestion.is_empty());
    }

    #[test]
    fn timeseries_covers_bounded_and_adaptive_runners() {
        let t = HypercubeNet::new(3).unwrap();
        let inj: Vec<Injection> = (0..8)
            .map(|i| Injection {
                src: 0,
                dst: 0b111,
                at: i / 4,
            })
            .collect();
        for runner in 0..2u8 {
            let tel = hb_telemetry::Telemetry::summary();
            tel.enable_timeseries(hb_telemetry::TsConfig::new(1));
            let cfg = SimConfig::default().with_telemetry(tel.clone());
            let s = if runner == 0 {
                run_bounded(&t, &inj, cfg, 4)
            } else {
                run_adaptive(&t, &inj, cfg)
            };
            let series = tel.series();
            assert_eq!(series["sim.injected"].total(), s.offered, "runner {runner}");
            assert_eq!(
                series["sim.delivered"].total(),
                s.delivered,
                "runner {runner}"
            );
            assert!(
                series.keys().any(|k| k.starts_with("link.")),
                "runner {runner}"
            );
        }
    }

    #[test]
    fn sustained_hotspot_is_detected_and_traced() {
        let t = HypercubeNet::new(3).unwrap();
        // A long single-channel backlog: channel 0->1 stays occupied for
        // 32 cycles, far past the default sustain threshold.
        let inj: Vec<Injection> = (0..32)
            .map(|_| Injection {
                src: 0,
                dst: 1,
                at: 0,
            })
            .collect();
        let tel = hb_telemetry::Telemetry::with_trace(4096);
        tel.enable_timeseries(hb_telemetry::TsConfig::new(4));
        run(&t, &inj, SimConfig::default().with_telemetry(tel.clone()));
        let events = tel.congestion();
        assert!(
            events
                .iter()
                .any(|e| e.kind == hb_telemetry::CongestionKind::HotspotLink
                    && e.subject == "link.0->1.queue"
                    && e.severity == hb_telemetry::Severity::Critical),
            "{events:?}"
        );
        // Detection also lands in the event trace.
        assert!(tel
            .events()
            .iter()
            .any(|e| matches!(e, Event::Congestion { .. })));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_injections_panic() {
        let t = HypercubeNet::new(3).unwrap();
        let inj = [
            Injection {
                src: 0,
                dst: 1,
                at: 5,
            },
            Injection {
                src: 0,
                dst: 1,
                at: 0,
            },
        ];
        run(&t, &inj, SimConfig::default());
    }
}
