//! Fault **churn**: simulation under a [`FaultTimeline`] of scheduled
//! fault/repair events, with incremental route repair.
//!
//! A timeline run is compiled in two steps:
//!
//! 1. **Compile** ([`compile`]) — walk the injection schedule once,
//!    applying every timeline event whose cycle has arrived *between*
//!    injections (events at cycle `c` are visible to injections at
//!    `c`). Events sharing a cycle form one **delta**; each delta is
//!    applied to the working [`FaultPlan`] and the [`RouteCache`] is
//!    repaired **incrementally** ([`RouteCache::repair`]): routes the
//!    delta cannot touch keep their slots, only affected pairs are
//!    respliced — `O(affected pairs)` per delta instead of the
//!    `O(memoized pairs × BFS)` of a rebuild. Each injection's route is
//!    then resolved under the plan in force at its cycle and frozen
//!    into per-injection [`ChurnRoutes`].
//! 2. **Run** — the frozen routes drive the ordinary engines through
//!    [`RouteSrc::Churn`]. The compile is engine-independent and fully
//!    deterministic, so serial, bounded, adaptive, flight, and sharded
//!    runs all see byte-identical routes — the sharded engine at any
//!    thread count included (`par_equiv`).
//!
//! Model semantics: packets are source-routed at **admission** — a
//! fault that lands mid-flight does not touch packets already in the
//! network (they fly the route they were admitted with), it only
//! affects later admissions. An injection whose compiled route is empty
//! (faulty endpoint or no survivor path under the plan at its cycle) is
//! refused and counted unroutable. Events scheduled after the last
//! injection are never applied: no admission can observe them.
//!
//! With a telemetry handle and a non-empty timeline the run also
//! records `sim.repair.*` counters (events applied, deltas, pairs
//! scanned/kept/respliced) and — under `cfg.profile` — a
//! `sim/route_repair` profiler phase (invocations = deltas, work =
//! nodes on respliced routes). An **empty** timeline emits none of
//! these and matches the static-plan runners byte for byte.

use crate::faults::{FaultEvent, FaultEventKind, FaultPlan, FaultTarget, FaultTimeline};
use crate::flight::TraceSampling;
use crate::routes::{ChurnRoutes, RepairStats, RouteCache, RouteSrc};
use crate::sim::{Injection, SimConfig, SimStats};
use crate::topology::NetTopology;
use hb_telemetry::{Profile, Telemetry};

/// Everything [`compile`] produces for one timeline run.
pub(crate) struct Compiled {
    /// Frozen per-injection routes (what the engines read).
    pub(crate) routes: ChurnRoutes,
    /// Base plan ∪ every timeline fault target — the
    /// [`TraceSampling::FaultAdjacent`] mask, so packets near any fault
    /// epoch are eligible for sampling.
    pub(crate) hot_plan: FaultPlan,
    /// Summed incremental-repair cost over all deltas.
    pub(crate) repair: RepairStats,
    /// Timeline events actually applied (cycle ≤ last injection).
    pub(crate) events_applied: u64,
    /// Effective deltas (event-cycle groups that changed the plan).
    pub(crate) deltas: u64,
}

/// Applies `ev` (the event at timeline index `idx`) to `plan`. Faults
/// carry their event index so detour spans can name the event that
/// caused them ([`crate::faults::FaultReason::event`]).
fn apply_event(plan: &mut FaultPlan, idx: usize, ev: &FaultEvent) {
    let tag = u16::try_from(idx).expect("invariant: timelines hold fewer than u16::MAX events");
    match (ev.kind, ev.target) {
        (FaultEventKind::Fault, FaultTarget::Node(v)) => {
            plan.add_node_at(v, tag);
        }
        (FaultEventKind::Fault, FaultTarget::Link(u, v)) => {
            plan.add_link_at(u, v, tag);
        }
        (FaultEventKind::Repair, FaultTarget::Node(v)) => {
            plan.remove_node(v);
        }
        (FaultEventKind::Repair, FaultTarget::Link(u, v)) => {
            plan.remove_link(u, v);
        }
    }
}

/// Compiles `timeline` against the injection schedule: one pass over
/// `injections` (sorted by `at`), repairing the route cache per
/// event-cycle delta and freezing each injection's admission route.
pub(crate) fn compile(
    topo: &dyn NetTopology,
    injections: &[Injection],
    base: &FaultPlan,
    timeline: &FaultTimeline,
) -> Compiled {
    assert!(
        injections.windows(2).all(|w| w[0].at <= w[1].at),
        "injections must be sorted by cycle"
    );
    let events = timeline.events();
    let mut plan = base.clone();
    let mut hot_plan = base.clone();
    for ev in events {
        if ev.kind == FaultEventKind::Fault {
            match ev.target {
                FaultTarget::Node(v) => {
                    hot_plan.add_node(v);
                }
                FaultTarget::Link(u, v) => {
                    hot_plan.add_link(u, v);
                }
            }
        }
    }

    let mut cache = RouteCache::new();
    cache.set_plan(&plan);
    let mut routes = ChurnRoutes::with_capacity(injections.len());
    let mut repair = RepairStats::default();
    let mut events_applied = 0u64;
    let mut deltas = 0u64;
    let mut next_ev = 0usize;
    for inj in injections {
        while next_ev < events.len() && events[next_ev].cycle <= inj.at {
            // One delta per event cycle: all its events land together.
            let at = events[next_ev].cycle;
            while next_ev < events.len() && events[next_ev].cycle == at {
                apply_event(&mut plan, next_ev, &events[next_ev]);
                next_ev += 1;
                events_applied += 1;
            }
            if cache.plan() != &plan {
                deltas += 1;
                repair.absorb(cache.repair(topo, &plan));
                routes.forget_dead(&cache);
            }
        }
        let slot = cache.resolve(topo, inj.src, inj.dst);
        routes.assign(&cache, slot);
    }

    Compiled {
        routes,
        hot_plan,
        repair,
        events_applied,
        deltas,
    }
}

/// Emits the `sim.repair.*` counters and (under `profile`) the
/// `sim/route_repair` profiler phase. Skipped entirely for empty
/// timelines so a churn run without events stays byte-identical to its
/// static-plan counterpart.
fn record_repair(tel: Option<&Telemetry>, profile: bool, timeline: &FaultTimeline, c: &Compiled) {
    if timeline.is_empty() {
        return;
    }
    let Some(t) = tel else { return };
    t.counter("sim.repair.events").add(c.events_applied);
    t.counter("sim.repair.deltas").add(c.deltas);
    t.counter("sim.repair.scanned").add(c.repair.scanned);
    t.counter("sim.repair.kept").add(c.repair.kept);
    t.counter("sim.repair.respliced").add(c.repair.respliced);
    if profile {
        let mut p = Profile::new();
        p.record("sim/route_repair", c.deltas, c.repair.work);
        if !p.is_empty() {
            t.merge_profile(&p);
        }
    }
}

/// Runs the oblivious fault-aware simulation under a base [`FaultPlan`]
/// plus a [`FaultTimeline`] of mid-run fault/repair events, with
/// per-packet flight recording as [`crate::run_with_faults`]. Serial
/// when `cfg.threads == 1` (or span tracing is live), sharded —
/// byte-identical at every thread count — otherwise.
///
/// With an empty timeline this is exactly [`crate::run_with_faults`].
///
/// # Panics
/// As [`crate::run_with_faults`] (unsorted injections, out-of-range
/// nodes).
pub fn run_with_timeline(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
    base: &FaultPlan,
    timeline: &FaultTimeline,
    sampling: TraceSampling,
) -> SimStats {
    let compiled = compile(topo, injections, base, timeline);
    record_repair(cfg.telemetry.as_ref(), cfg.profile, timeline, &compiled);
    crate::flight::run_flight(
        topo,
        injections,
        cfg,
        RouteSrc::Churn(&compiled.routes),
        &compiled.hot_plan,
        sampling,
    )
}

/// [`crate::run_bounded`] under a fault timeline: bounded queues with
/// backpressure, plus churn admission — injections whose compiled route
/// is empty are refused as unroutable.
///
/// # Panics
/// As [`crate::run_bounded`].
pub fn run_bounded_with_timeline(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
    capacity: usize,
    base: &FaultPlan,
    timeline: &FaultTimeline,
) -> SimStats {
    let compiled = compile(topo, injections, base, timeline);
    record_repair(cfg.telemetry.as_ref(), cfg.profile, timeline, &compiled);
    crate::sim::run_bounded_impl(
        topo,
        injections,
        &cfg,
        capacity,
        false,
        RouteSrc::Churn(&compiled.routes),
    )
}

/// [`crate::run_adaptive`] under a fault timeline. Churn gates
/// **admission only**: an injection unroutable under the plan at its
/// cycle is refused; packets in transit keep their fault-blind
/// least-queue adaptivity (the adaptive model routes hop by hop, so
/// frozen source routes do not apply — documented limitation).
///
/// # Panics
/// As [`crate::run_adaptive`].
pub fn run_adaptive_with_timeline(
    topo: &dyn NetTopology,
    injections: &[Injection],
    cfg: SimConfig,
    base: &FaultPlan,
    timeline: &FaultTimeline,
) -> SimStats {
    let compiled = compile(topo, injections, base, timeline);
    record_repair(cfg.telemetry.as_ref(), cfg.profile, timeline, &compiled);
    crate::sim::run_adaptive_impl(topo, injections, &cfg, Some(&compiled.routes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::run_with_faults;
    use crate::sim::{run_adaptive, run_bounded};
    use crate::topology::{HbRouteOrder, HyperButterflyNet, HypercubeNet};
    use crate::workload;

    fn hb() -> HyperButterflyNet {
        HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap()
    }

    fn cut_first_link_timeline(at: u64) -> FaultTimeline {
        let mut tl = FaultTimeline::new();
        tl.push(at, FaultEventKind::Fault, FaultTarget::Link(0, 1));
        tl
    }

    #[test]
    fn empty_timeline_matches_the_static_runners_exactly() {
        let t = hb();
        let traffic = workload::uniform(t.num_nodes(), 60, 0.3, 7);
        let mut plan = FaultPlan::new();
        plan.add_node(5).add_link(0, 2);
        let tl = FaultTimeline::new();
        let baseline = run_with_faults(
            &t,
            &traffic,
            SimConfig::default(),
            &plan,
            TraceSampling::Off,
        );
        let churn = run_with_timeline(
            &t,
            &traffic,
            SimConfig::default(),
            &plan,
            &tl,
            TraceSampling::Off,
        );
        assert_eq!(baseline, churn);
        // Counters match too — and no `sim.repair.*` keys appear.
        let tel_a = Telemetry::summary();
        run_with_faults(
            &t,
            &traffic,
            SimConfig::default().with_telemetry(tel_a.clone()),
            &plan,
            TraceSampling::Off,
        );
        let tel_b = Telemetry::summary();
        run_with_timeline(
            &t,
            &traffic,
            SimConfig::default().with_telemetry(tel_b.clone()),
            &plan,
            &tl,
            TraceSampling::Off,
        );
        assert_eq!(tel_a.snapshot(), tel_b.snapshot());

        let b = run_bounded(&t, &traffic, SimConfig::default(), 4);
        let bt = run_bounded_with_timeline(
            &t,
            &traffic,
            SimConfig::default(),
            4,
            &FaultPlan::new(),
            &tl,
        );
        assert_eq!(b, bt);
        let a = run_adaptive(&t, &traffic, SimConfig::default());
        let at =
            run_adaptive_with_timeline(&t, &traffic, SimConfig::default(), &FaultPlan::new(), &tl);
        assert_eq!(a, at);
    }

    #[test]
    fn a_cycle_zero_fault_matches_the_equivalent_static_plan() {
        // Every admission happens under plan+event, so the run must
        // equal a static run with the fault baked in (stats; counters
        // differ only by the extra sim.repair.* keys).
        let t = HypercubeNet::new(4).unwrap();
        let traffic = workload::uniform(t.num_nodes(), 50, 0.4, 9);
        let mut static_plan = FaultPlan::new();
        static_plan.add_link(0, 1);
        let expected = run_with_faults(
            &t,
            &traffic,
            SimConfig::default(),
            &static_plan,
            TraceSampling::Off,
        );
        let got = run_with_timeline(
            &t,
            &traffic,
            SimConfig::default(),
            &FaultPlan::new(),
            &cut_first_link_timeline(0),
            TraceSampling::Off,
        );
        assert_eq!(expected, got);
    }

    #[test]
    fn mid_run_faults_spare_packets_already_in_flight() {
        // One packet admitted at cycle 0 on route 0,1,3,7,15; the link
        // 0-1 dies at cycle 2, well after the packet crossed it. The
        // packet flies its admitted route; a second packet admitted at
        // cycle 5 must detour.
        let t = HypercubeNet::new(4).unwrap();
        let inj = [
            Injection {
                src: 0,
                dst: 15,
                at: 0,
            },
            Injection {
                src: 0,
                dst: 15,
                at: 5,
            },
        ];
        let tel = Telemetry::summary();
        let s = run_with_timeline(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &FaultPlan::new(),
            &cut_first_link_timeline(2),
            TraceSampling::Off,
        );
        assert_eq!(s.delivered, 2);
        assert_eq!(s.stranded, 0);
        // Only the second admission detours.
        assert_eq!(tel.counter("sim.reroutes").get(), 1);
        assert_eq!(tel.counter("sim.repair.events").get(), 1);
        assert_eq!(tel.counter("sim.repair.deltas").get(), 1);
    }

    #[test]
    fn repair_events_restore_the_original_routes() {
        // Fault at cycle 1, repair at cycle 3: admissions at cycles 0
        // and 4 take the oblivious route, the one at cycle 2 detours.
        let t = HypercubeNet::new(4).unwrap();
        let inj: Vec<Injection> = [0u64, 2, 4]
            .iter()
            .map(|&at| Injection {
                src: 0,
                dst: 15,
                at,
            })
            .collect();
        let mut tl = cut_first_link_timeline(1);
        tl.push(3, FaultEventKind::Repair, FaultTarget::Link(0, 1));
        let tel = Telemetry::summary();
        let s = run_with_timeline(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &FaultPlan::new(),
            &tl,
            TraceSampling::Off,
        );
        assert_eq!(s.delivered, 3);
        assert_eq!(tel.counter("sim.reroutes").get(), 1);
        assert_eq!(tel.counter("sim.repair.events").get(), 2);
        assert_eq!(tel.counter("sim.repair.deltas").get(), 2);
        // The second delta (the repair) rescans the memo and resplices
        // the detoured pair back to its oblivious route.
        assert!(tel.counter("sim.repair.respliced").get() >= 1);
    }

    #[test]
    fn events_after_the_last_injection_never_apply() {
        let t = hb();
        let traffic = workload::uniform(t.num_nodes(), 30, 0.5, 3);
        let last_at = traffic.last().unwrap().at;
        let tel = Telemetry::summary();
        run_with_timeline(
            &t,
            &traffic,
            SimConfig::default().with_telemetry(tel.clone()),
            &FaultPlan::new(),
            &cut_first_link_timeline(last_at + 100),
            TraceSampling::Off,
        );
        assert_eq!(tel.counter("sim.repair.events").get(), 0);
        assert_eq!(tel.counter("sim.repair.deltas").get(), 0);
    }

    #[test]
    fn profiled_timeline_runs_record_the_repair_phase() {
        let t = hb();
        let traffic = workload::uniform(t.num_nodes(), 40, 0.4, 5);
        let tel = Telemetry::summary();
        run_with_timeline(
            &t,
            &traffic,
            SimConfig::default()
                .with_telemetry(tel.clone())
                .with_profile(true),
            &FaultPlan::new(),
            &cut_first_link_timeline(2),
            TraceSampling::Off,
        );
        let prof = tel.profile();
        let phase = prof
            .get("sim/route_repair")
            .expect("timeline runs record the repair phase");
        assert_eq!(phase.invocations, 1, "one delta");
        assert!(prof.get("sim/route_build").is_some());
    }

    #[test]
    fn unroutable_admissions_strand_and_conserve_under_churn() {
        // Isolate node 7 of Q3 mid-run: admissions to it after the
        // events are refused.
        let t = HypercubeNet::new(3).unwrap();
        let inj = [
            Injection {
                src: 0,
                dst: 7,
                at: 0,
            },
            Injection {
                src: 0,
                dst: 7,
                at: 10,
            },
        ];
        let mut tl = FaultTimeline::new();
        for (u, v) in [(7, 3), (7, 5), (7, 6)] {
            tl.push(4, FaultEventKind::Fault, FaultTarget::Link(u, v));
        }
        let tel = Telemetry::summary();
        let s = run_with_timeline(
            &t,
            &inj,
            SimConfig::default().with_telemetry(tel.clone()),
            &FaultPlan::new(),
            &tl,
            TraceSampling::Off,
        );
        assert_eq!(s.delivered, 1);
        assert_eq!(s.stranded, 1);
        assert_eq!(s.delivered + s.stranded, s.offered);
        assert_eq!(tel.counter("sim.unroutable").get(), 1);
        // Three events, one cycle group, one delta.
        assert_eq!(tel.counter("sim.repair.events").get(), 3);
        assert_eq!(tel.counter("sim.repair.deltas").get(), 1);
    }

    #[test]
    fn bounded_and_adaptive_timeline_runs_refuse_unroutable_admissions() {
        let t = HypercubeNet::new(3).unwrap();
        let inj = [
            Injection {
                src: 0,
                dst: 7,
                at: 0,
            },
            Injection {
                src: 0,
                dst: 7,
                at: 10,
            },
        ];
        let mut tl = FaultTimeline::new();
        for (u, v) in [(7, 3), (7, 5), (7, 6)] {
            tl.push(4, FaultEventKind::Fault, FaultTarget::Link(u, v));
        }
        let b =
            run_bounded_with_timeline(&t, &inj, SimConfig::default(), 4, &FaultPlan::new(), &tl);
        assert_eq!(b.delivered, 1);
        assert_eq!(b.stranded, 1);
        let a = run_adaptive_with_timeline(&t, &inj, SimConfig::default(), &FaultPlan::new(), &tl);
        assert_eq!(a.delivered, 1);
        assert_eq!(a.stranded, 1);
    }
}
