//! Synthetic traffic workloads.
//!
//! The paper motivates `HB(m, n)` as a general-purpose multiprocessor
//! interconnect; these are the standard traffic patterns used to exercise
//! such fabrics: uniform random, a fixed random permutation, hotspot, and
//! neighbor (locality) traffic. All generators are deterministic under a
//! seed.

use crate::sim::Injection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random traffic: every cycle in `0..cycles`, each node injects
/// a packet to a uniformly random *other* node with probability `rate`.
pub fn uniform(n: usize, cycles: u64, rate: f64, seed: u64) -> Vec<Injection> {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for at in 0..cycles {
        for src in 0..n {
            if rng.random::<f64>() < rate {
                let mut dst = rng.random_range(0..n - 1);
                if dst >= src {
                    dst += 1;
                }
                out.push(Injection { src, dst, at });
            }
        }
    }
    out
}

/// Permutation traffic: a fixed random permutation `pi` (fixed-point
/// free where possible); each node sends one packet to `pi(node)` per
/// `period` cycles.
pub fn permutation(n: usize, rounds: u64, period: u64, seed: u64) -> Vec<Injection> {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    // Random derangement by rejection (cheap at these sizes).
    let mut pi: Vec<usize> = (0..n).collect();
    loop {
        // Fisher-Yates.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            pi.swap(i, j);
        }
        if pi.iter().enumerate().all(|(i, &p)| i != p) {
            break;
        }
    }
    let mut out = Vec::new();
    for r in 0..rounds {
        let at = r * period;
        for (src, &dst) in pi.iter().enumerate() {
            out.push(Injection { src, dst, at });
        }
    }
    out
}

/// Hotspot traffic: like [`uniform`], but each packet targets `hotspot`
/// with probability `hot_fraction` (uniform otherwise).
pub fn hotspot(
    n: usize,
    cycles: u64,
    rate: f64,
    hotspot: usize,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Injection> {
    assert!(n >= 2 && hotspot < n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for at in 0..cycles {
        for src in 0..n {
            if rng.random::<f64>() >= rate {
                continue;
            }
            let dst = if src != hotspot && rng.random::<f64>() < hot_fraction {
                hotspot
            } else {
                let mut d = rng.random_range(0..n - 1);
                if d >= src {
                    d += 1;
                }
                d
            };
            out.push(Injection { src, dst, at });
        }
    }
    out
}

/// Bit-complement traffic: node `v` sends to `(n - 1) - v` — a classic
/// adversarial pattern for dimension-ordered routers.
pub fn bit_complement(n: usize, rounds: u64, period: u64) -> Vec<Injection> {
    let mut out = Vec::new();
    for r in 0..rounds {
        let at = r * period;
        for src in 0..n {
            let dst = n - 1 - src;
            if dst != src {
                out.push(Injection { src, dst, at });
            }
        }
    }
    out
}

/// Bit-reversal traffic: node `v` (read as a `bits`-wide word) sends to
/// the word with its bits reversed — the classic FFT-permutation stress
/// pattern. Nodes `>= 2^bits` stay silent; fixed points skip.
pub fn bit_reversal(n: usize, bits: u32, rounds: u64, period: u64) -> Vec<Injection> {
    let mut out = Vec::new();
    for r in 0..rounds {
        let at = r * period;
        for src in 0..n.min(1 << bits) {
            let dst = (src as u32).reverse_bits() >> (32 - bits);
            let dst = dst as usize;
            if dst != src && dst < n {
                out.push(Injection { src, dst, at });
            }
        }
    }
    out
}

/// Shuffle traffic: node `v` sends to `rotate_left(v)` in a `bits`-wide
/// word — the perfect-shuffle pattern de Bruijn networks route in one
/// hop and others must emulate.
pub fn shuffle(n: usize, bits: u32, rounds: u64, period: u64) -> Vec<Injection> {
    let mask = (1usize << bits) - 1;
    let mut out = Vec::new();
    for r in 0..rounds {
        let at = r * period;
        for src in 0..n.min(1 << bits) {
            let dst = ((src << 1) | (src >> (bits - 1))) & mask;
            if dst != src && dst < n {
                out.push(Injection { src, dst, at });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_sorted() {
        let a = uniform(16, 10, 0.5, 42);
        let b = uniform(16, 10, 0.5, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.iter().all(|i| i.src != i.dst && i.dst < 16));
        // Roughly rate * n * cycles packets.
        assert!((40..=120).contains(&a.len()), "{}", a.len());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform(16, 10, 0.5, 1), uniform(16, 10, 0.5, 2));
    }

    #[test]
    fn permutation_is_a_derangement() {
        let inj = permutation(20, 1, 1, 7);
        assert_eq!(inj.len(), 20);
        let mut seen = [false; 20];
        for i in &inj {
            assert_ne!(i.src, i.dst);
            assert!(!seen[i.dst]);
            seen[i.dst] = true;
        }
    }

    #[test]
    fn hotspot_skews_destinations() {
        let inj = hotspot(32, 50, 0.8, 3, 0.7, 9);
        let hot = inj.iter().filter(|i| i.dst == 3).count();
        assert!(hot as f64 > inj.len() as f64 * 0.4, "{hot}/{}", inj.len());
    }

    #[test]
    fn bit_reversal_is_an_involution_pattern() {
        let inj = bit_reversal(16, 4, 1, 1);
        for i in &inj {
            let back = (i.dst as u32).reverse_bits() >> 28;
            assert_eq!(back as usize, i.src);
        }
        // Palindromic words are fixed points and must be skipped.
        assert!(inj.iter().all(|i| i.src != i.dst));
        assert_eq!(inj.len(), 16 - 4); // 4 palindromes in 4 bits
    }

    #[test]
    fn shuffle_rotates_left() {
        let inj = shuffle(8, 3, 1, 1);
        for i in &inj {
            assert_eq!(i.dst, ((i.src << 1) | (i.src >> 2)) & 7);
        }
        assert!(inj.iter().all(|i| i.src != i.dst)); // 000, 111 skipped
        assert_eq!(inj.len(), 6);
    }

    #[test]
    fn bit_complement_pairs_up() {
        let inj = bit_complement(8, 2, 5);
        assert_eq!(inj.len(), 16);
        assert!(inj.iter().all(|i| i.dst == 7 - i.src));
        assert_eq!(inj[8].at, 5);
    }
}
