//! # hb-netsim — packet-level interconnection-network simulator
//!
//! The paper proposes `HB(m, n)` as a multiprocessor interconnect but,
//! being an analytical 1998 paper, reports no measurements. This crate is
//! the substitute testbed (see DESIGN.md §4): a cycle-accurate
//! store-and-forward simulator that *exercises* the claims —
//!
//! * [`topology`] — a uniform adapter over `H_m`, `B_n`, `HD(m, n)`, and
//!   `HB(m, n)` with each topology's own oblivious router (including the
//!   hyper-butterfly's two routing orders for the ablation);
//! * [`sim`] — the simulator core (source routing, per-channel FIFOs,
//!   1 packet/channel/cycle);
//! * [`workload`] — uniform / permutation / hotspot / bit-complement
//!   traffic, deterministic under seeds;
//! * [`faults`] — fault-injection campaigns measuring survivor
//!   connectivity and pair reachability (Corollary 1, measured), plus
//!   the static [`FaultPlan`] the fault-aware runner routes around;
//! * [`flight`] — the fault-aware simulator with a per-packet **flight
//!   recorder**: sampled packets leave causal span trees (one span per
//!   hop: queue depth, wait, forward decision, reroute attribution);
//! * [`routes`] — precomputed route tables ([`RouteTable`], built once
//!   per `(topology, FaultPlan)`) and the epoch-keyed [`RouteCache`]
//!   with **incremental repair** under plan deltas, so the hot loops
//!   never recompute a route per packet;
//! * [`churn`] — fault-timeline runs ([`FaultTimeline`]): scheduled
//!   mid-run fault/repair events compiled into per-injection routes by
//!   delta-splicing the cache, deterministic across engines and thread
//!   counts;
//! * [`pool`] — the slab [`pool::PacketPool`] backing the simulators'
//!   queues (4-byte keys, zero per-hop allocation in steady state);
//! * the sharded parallel engine behind [`SimConfig::with_threads`]:
//!   deterministic per-shard advance with ordered cross-shard
//!   mailboxes, byte-identical to the serial runners at every thread
//!   count (DESIGN.md §9);
//! * [`forwarding`] — edge forwarding index (static routing congestion,
//!   the VLSI-quality metric).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod faults;
pub mod flight;
pub mod forwarding;
mod par;
pub mod pool;
pub mod routes;
pub mod sim;
pub mod topology;
mod tsrec;
pub mod workload;

pub use churn::{run_adaptive_with_timeline, run_bounded_with_timeline, run_with_timeline};
pub use faults::{FaultEvent, FaultEventKind, FaultPlan, FaultReason, FaultTarget, FaultTimeline};
pub use flight::{run_with_faults, TraceSampling};
pub use routes::{RepairStats, RouteCache, RouteTable};
pub use sim::{
    run, run_adaptive, run_bounded, run_with_mem, Injection, MemStats, SimConfig, SimStats,
};
pub use topology::{
    ButterflyNet, HbRouteOrder, HyperButterflyNet, HyperDeBruijnNet, HypercubeNet,
    ImplicitTopology, NetTopology, MAX_PRODUCTIVE,
};
