//! Precomputed route tables: compute every distinct `(src, dst)` route
//! **once** per `(topology, [`FaultPlan`])` instead of once per packet.
//!
//! The simulators in [`crate::sim`] and [`crate::flight`] are oblivious:
//! a packet's path depends only on its endpoints and the static fault
//! plan, never on network state. Re-deriving the route at every
//! injection therefore repeats identical work — `topo.route` allocates a
//! fresh `Vec` per packet, and the fault-aware runner may re-run a BFS
//! over the survivor graph. [`RouteTable`] hoists all of that out of the
//! hot loop: routes for the distinct endpoint pairs of a workload are
//! computed once into a flat CSR arena (`offsets` + `nodes`), packets
//! carry a `u32` slot instead of a `Vec<NodeId>`, and detour attribution
//! (where a reroute begins and which fault caused it) is interned per
//! route rather than cloned per packet.
//!
//! [`RouteCache`] is the long-lived variant for fault campaigns: it
//! memoizes routes lazily and is keyed by a **fault epoch** — swapping
//! in a different [`FaultPlan`] bumps the epoch and clears the memo, so
//! reroutes always hit table entries computed under the current plan,
//! never a stale BFS.
//!
//! Memory: the CSR arena costs `4 * (nodes_in_routes + pairs + 1)` bytes
//! plus the pair index — see [`RouteTable::heap_bytes`] (the same
//! accounting convention as `hb_graphs::Graph::heap_bytes`, quoted in
//! DESIGN.md §9).

use crate::faults::FaultPlan;
use crate::sim::Injection;
use crate::topology::NetTopology;
use hb_graphs::{Graph, NodeId};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Deterministic BFS route from `src` to `dst` over the survivor graph
/// (skipping faulty nodes and links). `None` when unreachable. Neighbor
/// order is the graph's sorted adjacency, so the result is a canonical
/// shortest survivor path.
pub fn survivor_route(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    plan: &FaultPlan,
) -> Option<Vec<NodeId>> {
    if plan.is_node_faulty(src) || plan.is_node_faulty(dst) {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    let n = g.num_nodes();
    let mut parent = vec![usize::MAX; n];
    parent[src] = src;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &w in g.neighbors(u) {
            let w = w as usize;
            if parent[w] != usize::MAX || plan.is_link_faulty(u, w) {
                continue;
            }
            parent[w] = u;
            if w == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(w);
        }
    }
    None
}

/// Where a detour begins (hop index) and the attributed fault reason.
pub type Detour = Option<(u32, String)>;

/// The oblivious route with at most one fault detour spliced in: the
/// packet flies the healthy prefix of `topo.route`, then a BFS survivor
/// path from the node in front of the first faulty link (the detour
/// itself avoids every fault, so one splice suffices). Returns the route
/// plus the hop index where the detour begins and the attributed reason,
/// or `None` when the packet cannot be routed (faulty endpoint or no
/// survivor path).
pub fn plan_route(
    topo: &dyn NetTopology,
    src: NodeId,
    dst: NodeId,
    plan: &FaultPlan,
) -> Option<(Vec<NodeId>, Detour)> {
    if plan.is_node_faulty(src) || plan.is_node_faulty(dst) {
        return None;
    }
    let mut route = topo.route(src, dst);
    for i in 0..route.len().saturating_sub(1) {
        let Some(reason) = plan.link_fault_reason(route[i], route[i + 1]) else {
            continue;
        };
        let tail = survivor_route(topo.graph(), route[i], dst, plan)?;
        route.truncate(i + 1);
        route.extend_from_slice(&tail[1..]);
        return Some((route, Some((i as u32, reason))));
    }
    Some((route, None))
}

/// Detour sentinel in the packed per-slot arrays: no detour on this route.
const NO_DETOUR: u32 = u32::MAX;

/// Flat CSR arena of routes shared by [`RouteTable`] and [`RouteCache`].
#[derive(Clone, Debug, Default)]
struct RouteArena {
    /// `(src, dst)` pair -> slot. Ordered so every walk over the
    /// index (debugging, future dumps) is deterministic by construction.
    index: BTreeMap<(u32, u32), u32>,
    /// Slot `s` occupies `nodes[offsets[s] as usize .. offsets[s+1] as usize]`.
    /// An **empty** range means the pair is unroutable under the plan.
    offsets: Vec<u32>,
    /// Concatenated route nodes.
    nodes: Vec<u32>,
    /// Per slot: hop index where the detour begins, or [`NO_DETOUR`].
    detour_hop: Vec<u32>,
    /// Per slot: index into `reasons`, meaningful only with a detour.
    detour_reason: Vec<u32>,
    /// Interned fault-attribution strings.
    reasons: Vec<String>,
}

impl RouteArena {
    fn new() -> Self {
        Self {
            offsets: vec![0],
            ..Self::default()
        }
    }

    /// Appends a computed route for `(src, dst)`, returning its slot.
    fn push(
        &mut self,
        src: u32,
        dst: u32,
        planned: Option<(Vec<NodeId>, Detour)>,
        intern: &mut BTreeMap<String, u32>,
    ) -> u32 {
        let slot = u32::try_from(self.index.len()).expect("fewer than 2^32 pairs");
        self.index.insert((src, dst), slot);
        let (mut hop, mut reason_id) = (NO_DETOUR, NO_DETOUR);
        if let Some((route, detour)) = planned {
            self.nodes.extend(
                route
                    .iter()
                    .map(|&v| u32::try_from(v).expect("node fits u32")),
            );
            if let Some((at, reason)) = detour {
                hop = at;
                reason_id = *intern.entry(reason.clone()).or_insert_with(|| {
                    self.reasons.push(reason);
                    u32::try_from(self.reasons.len() - 1).expect("few reasons")
                });
            }
        }
        self.offsets
            .push(u32::try_from(self.nodes.len()).expect("arena fits u32"));
        self.detour_hop.push(hop);
        self.detour_reason.push(reason_id);
        slot
    }

    fn path(&self, slot: u32) -> &[u32] {
        let s = slot as usize;
        &self.nodes[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    fn detour(&self, slot: u32) -> Option<(u32, &str)> {
        let hop = self.detour_hop[slot as usize];
        (hop != NO_DETOUR).then(|| {
            (
                hop,
                self.reasons[self.detour_reason[slot as usize] as usize].as_str(),
            )
        })
    }

    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.index.len() * (size_of::<(u32, u32)>() + size_of::<u32>())
            + self.offsets.capacity() * size_of::<u32>()
            + self.nodes.capacity() * size_of::<u32>()
            + self.detour_hop.capacity() * size_of::<u32>()
            + self.detour_reason.capacity() * size_of::<u32>()
            + self.reasons.iter().map(String::len).sum::<usize>()
    }
}

/// Immutable precomputed route table for one `(topology, FaultPlan)`
/// pair, covering a fixed set of endpoint pairs (typically the distinct
/// pairs of a workload — **not** all `n^2` pairs, so hotspot and
/// permutation traffic pay for their few distinct routes only).
///
/// Slots are dense `u32`s in first-seen pair order; packets store the
/// slot instead of an owned route.
#[derive(Clone, Debug)]
pub struct RouteTable {
    arena: RouteArena,
    /// Pairs with no survivor route under the plan.
    unroutable_pairs: u64,
}

impl RouteTable {
    /// Builds the table for the given endpoint pairs (duplicates are
    /// deduplicated; slot order is first-seen order). With an empty
    /// `plan` this is exactly `topo.route` per distinct pair; otherwise
    /// each route gets at most one survivor-BFS detour spliced in by
    /// [`plan_route`].
    #[must_use]
    pub fn build(
        topo: &dyn NetTopology,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
        plan: &FaultPlan,
    ) -> Self {
        let mut arena = RouteArena::new();
        let mut intern = BTreeMap::new();
        let mut unroutable_pairs = 0u64;
        let faultless = plan.is_empty();
        for (src, dst) in pairs {
            let key = (
                u32::try_from(src).expect("node fits u32"),
                u32::try_from(dst).expect("node fits u32"),
            );
            if arena.index.contains_key(&key) {
                continue;
            }
            let planned = if faultless {
                Some((topo.route(src, dst), None))
            } else {
                plan_route(topo, src, dst, plan)
            };
            if planned.is_none() {
                unroutable_pairs += 1;
            }
            arena.push(key.0, key.1, planned, &mut intern);
        }
        Self {
            arena,
            unroutable_pairs,
        }
    }

    /// Builds the table for the distinct endpoint pairs of a workload.
    #[must_use]
    pub fn for_injections(
        topo: &dyn NetTopology,
        injections: &[Injection],
        plan: &FaultPlan,
    ) -> Self {
        Self::build(topo, injections.iter().map(|i| (i.src, i.dst)), plan)
    }

    /// Slot of `(src, dst)`, if the pair was in the build set.
    #[must_use]
    pub fn slot(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.arena.index.get(&(src as u32, dst as u32)).copied()
    }

    /// The route stored in `slot` (node ids). **Empty** means the pair
    /// is unroutable under the plan; a single node means self-delivery.
    #[must_use]
    pub fn path(&self, slot: u32) -> &[u32] {
        self.arena.path(slot)
    }

    /// Hop index where the route's detour begins plus the attributed
    /// fault, `None` for purely oblivious routes.
    #[must_use]
    pub fn detour(&self, slot: u32) -> Option<(u32, &str)> {
        self.arena.detour(slot)
    }

    /// Number of distinct pairs in the table.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.arena.index.len()
    }

    /// Pairs with no survivor route under the plan.
    #[must_use]
    pub fn unroutable_pairs(&self) -> u64 {
        self.unroutable_pairs
    }

    /// Approximate heap footprint in bytes (same convention as
    /// `hb_graphs::Graph::heap_bytes`).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
    }
}

/// Lazily memoized route store keyed by a **fault epoch**: call
/// [`RouteCache::set_plan`] when the fault set changes and every
/// subsequent [`RouteCache::resolve`] recomputes under the new plan
/// (slots from earlier epochs are invalid — the epoch in
/// [`RouteCache::epoch`] lets callers detect stale slot handles).
///
/// Useful for fault campaigns that sweep many plans over one topology:
/// within an epoch repeated lookups of the same pair hit the table, not
/// a fresh BFS.
#[derive(Clone, Debug, Default)]
pub struct RouteCache {
    plan: FaultPlan,
    epoch: u64,
    arena: RouteArena,
    intern: BTreeMap<String, u32>,
}

impl RouteCache {
    /// An empty cache with an empty fault plan at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            arena: RouteArena::new(),
            ..Self::default()
        }
    }

    /// Current fault epoch; bumped by every effective [`Self::set_plan`].
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The plan routes are currently computed under.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Installs a new fault plan. A plan equal to the current one is a
    /// no-op; otherwise the memo is cleared and the epoch bumped, so
    /// previously returned slots must not be reused.
    pub fn set_plan(&mut self, plan: &FaultPlan) {
        if *plan == self.plan {
            return;
        }
        self.plan = plan.clone();
        self.epoch += 1;
        self.arena = RouteArena::new();
        self.intern.clear();
    }

    /// Slot of the route for `(src, dst)` under the current plan,
    /// computing and memoizing it on first use.
    pub fn resolve(&mut self, topo: &dyn NetTopology, src: NodeId, dst: NodeId) -> u32 {
        let key = (
            u32::try_from(src).expect("node fits u32"),
            u32::try_from(dst).expect("node fits u32"),
        );
        if let Some(&slot) = self.arena.index.get(&key) {
            return slot;
        }
        let planned = if self.plan.is_empty() {
            Some((topo.route(src, dst), None))
        } else {
            plan_route(topo, src, dst, &self.plan)
        };
        self.arena.push(key.0, key.1, planned, &mut self.intern)
    }

    /// The memoized route in `slot` (empty = unroutable). Slots are only
    /// valid within the epoch that produced them.
    #[must_use]
    pub fn path(&self, slot: u32) -> &[u32] {
        self.arena.path(slot)
    }

    /// Detour attribution of the route in `slot` (as [`RouteTable::detour`]).
    #[must_use]
    pub fn detour(&self, slot: u32) -> Option<(u32, &str)> {
        self.arena.detour(slot)
    }

    /// Distinct pairs memoized in the current epoch.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.arena.index.len()
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
            + self.intern.len() * std::mem::size_of::<(String, u32)>()
            + self.plan.nodes().count() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{HbRouteOrder, HyperButterflyNet, HypercubeNet};

    fn hb() -> HyperButterflyNet {
        HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap()
    }

    #[test]
    fn faultless_table_matches_topology_routes() {
        let t = hb();
        let n = t.num_nodes();
        let pairs: Vec<_> = (0..n).map(|v| (v, (v * 7 + 3) % n)).collect();
        let table = RouteTable::build(&t, pairs.iter().copied(), &FaultPlan::new());
        assert_eq!(table.num_pairs(), pairs.len());
        assert_eq!(table.unroutable_pairs(), 0);
        for &(src, dst) in &pairs {
            let slot = table.slot(src, dst).unwrap();
            let expect: Vec<u32> = t.route(src, dst).iter().map(|&v| v as u32).collect();
            assert_eq!(table.path(slot), expect.as_slice());
            assert_eq!(table.detour(slot), None);
        }
        assert!(table.heap_bytes() > 0);
    }

    #[test]
    fn duplicate_pairs_share_one_slot() {
        let t = HypercubeNet::new(4).unwrap();
        let inj: Vec<Injection> = (0..32)
            .map(|i| Injection {
                src: 0,
                dst: 15,
                at: i,
            })
            .collect();
        let table = RouteTable::for_injections(&t, &inj, &FaultPlan::new());
        assert_eq!(table.num_pairs(), 1);
        assert_eq!(table.path(0), &[0, 1, 3, 7, 15]);
    }

    #[test]
    fn route_lengths_equal_core_distances_on_hb() {
        // Remark 6/8: the optimal HB route concatenates the hypercube
        // and butterfly legs, so table route length == hb-core distance.
        for (m, n) in [(1u32, 3u32), (2, 3), (2, 4)] {
            let t = HyperButterflyNet::new(m, n, HbRouteOrder::CubeFirst).unwrap();
            let nn = t.num_nodes();
            let pairs: Vec<_> = (0..nn.min(40)).map(|v| (v, (v * 13 + 5) % nn)).collect();
            let table = RouteTable::build(&t, pairs.iter().copied(), &FaultPlan::new());
            let hb = hb_core::HyperButterfly::new(m, n).unwrap();
            for &(src, dst) in &pairs {
                let slot = table.slot(src, dst).unwrap();
                let hops = table.path(slot).len() - 1;
                let d = hb_core::routing::distance(&hb, hb.node(src), hb.node(dst));
                assert_eq!(hops as u32, d, "HB({m},{n}) {src}->{dst}");
            }
        }
    }

    #[test]
    fn faulted_table_matches_plan_route_splices() {
        let t = hb();
        let g = t.graph();
        let mut plan = FaultPlan::new();
        plan.add_node(5).add_link(0, 2).add_link(1, 3);
        let n = t.num_nodes();
        let pairs: Vec<_> = (0..n).map(|v| (v, (v * 11 + 1) % n)).collect();
        let table = RouteTable::build(&t, pairs.iter().copied(), &plan);
        for &(src, dst) in &pairs {
            let slot = table.slot(src, dst).unwrap();
            match plan_route(&t, src, dst, &plan) {
                None => assert!(table.path(slot).is_empty(), "{src}->{dst}"),
                Some((route, detour)) => {
                    let expect: Vec<u32> = route.iter().map(|&v| v as u32).collect();
                    assert_eq!(table.path(slot), expect.as_slice());
                    match (table.detour(slot), detour) {
                        (None, None) => {}
                        (Some((h, r)), Some((eh, er))) => {
                            assert_eq!(h, eh);
                            assert_eq!(r, er);
                        }
                        other => panic!("detour mismatch {other:?}"),
                    }
                    // The spliced route is fault-free end to end.
                    for w in table.path(slot).windows(2) {
                        assert!(g.has_edge(w[0] as usize, w[1] as usize));
                        assert!(!plan.is_link_faulty(w[0] as usize, w[1] as usize));
                    }
                }
            }
        }
    }

    #[test]
    fn unroutable_pairs_have_empty_paths() {
        let t = HypercubeNet::new(3).unwrap();
        let mut plan = FaultPlan::new();
        plan.add_link(7, 3).add_link(7, 5).add_link(7, 6); // isolate 7
        let table = RouteTable::build(&t, [(0, 7), (0, 2)], &plan);
        assert_eq!(table.unroutable_pairs(), 1);
        assert!(table.path(table.slot(0, 7).unwrap()).is_empty());
        assert!(!table.path(table.slot(0, 2).unwrap()).is_empty());
    }

    #[test]
    fn cache_epoch_invalidation_recomputes_under_new_plan() {
        let t = HypercubeNet::new(4).unwrap();
        let mut cache = RouteCache::new();
        assert_eq!(cache.epoch(), 0);
        let s0 = cache.resolve(&t, 0, 15);
        assert_eq!(cache.path(s0), &[0, 1, 3, 7, 15]);
        assert_eq!(cache.detour(s0), None);

        // Same plan: no-op, memo intact.
        cache.set_plan(&FaultPlan::new());
        assert_eq!(cache.epoch(), 0);
        assert_eq!(cache.num_pairs(), 1);

        // New plan: epoch bump, memo cleared, spliced route returned —
        // and it matches what the flight recorder's BFS would fly.
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1);
        cache.set_plan(&plan);
        assert_eq!(cache.epoch(), 1);
        assert_eq!(cache.num_pairs(), 0);
        let s1 = cache.resolve(&t, 0, 15);
        let (expect, detour) = plan_route(&t, 0, 15, &plan).unwrap();
        let expect: Vec<u32> = expect.iter().map(|&v| v as u32).collect();
        assert_eq!(cache.path(s1), expect.as_slice());
        let (hop, reason) = cache.detour(s1).unwrap();
        assert_eq!((hop, reason), (0, "link 0-1 faulty"));
        assert_eq!(detour, Some((0, "link 0-1 faulty".to_string())));
        // Still 4 hops: the survivor graph keeps a shortest detour.
        assert_eq!(cache.path(s1).len() - 1, 4);

        // Memoized on second resolve (same slot back).
        assert_eq!(cache.resolve(&t, 0, 15), s1);
        assert_eq!(cache.num_pairs(), 1);
    }

    #[test]
    fn cache_reasons_are_interned_across_pairs() {
        let t = HypercubeNet::new(3).unwrap();
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1);
        let mut cache = RouteCache::new();
        cache.set_plan(&plan);
        let a = cache.resolve(&t, 0, 1);
        let b = cache.resolve(&t, 0, 3);
        // 0->1 detours (direct link cut); 0->3 routes 0-1-3 so it also
        // detours at hop 0. Both attribute the same interned reason.
        assert_eq!(cache.detour(a).unwrap().1, "link 0-1 faulty");
        assert_eq!(cache.detour(b).unwrap().1, "link 0-1 faulty");
        assert_eq!(cache.arena.reasons.len(), 1);
    }
}
