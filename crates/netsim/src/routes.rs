//! Precomputed route tables: compute every distinct `(src, dst)` route
//! **once** per `(topology, [`FaultPlan`])` instead of once per packet.
//!
//! The simulators in [`crate::sim`] and [`crate::flight`] are oblivious:
//! a packet's path depends only on its endpoints and the static fault
//! plan, never on network state. Re-deriving the route at every
//! injection therefore repeats identical work — `topo.route` allocates a
//! fresh `Vec` per packet, and the fault-aware runner may re-run a BFS
//! over the survivor graph. [`RouteTable`] hoists all of that out of the
//! hot loop: routes for the distinct endpoint pairs of a workload are
//! computed once into a flat CSR arena (`offsets` + `nodes`), packets
//! carry a `u32` slot instead of a `Vec<NodeId>`, and detour attribution
//! (where a reroute begins and which fault caused it) is interned per
//! route rather than cloned per packet.
//!
//! [`RouteCache`] is the long-lived variant for fault campaigns: it
//! memoizes routes lazily and is keyed by a **fault epoch** — swapping
//! in a different [`FaultPlan`] bumps the epoch, but the memo is
//! repaired *incrementally*: every memoized route the plan delta cannot
//! touch survives verbatim (same slot, same bytes), and only the
//! affected routes are invalidated ([`RouteCache::set_plan`], lazily) or
//! respliced in place ([`RouteCache::repair`], eagerly — the churn
//! engines' per-delta hot path). The invalidation rule, proven
//! equivalent to a rebuild-from-scratch by the `repair_equiv` proptest:
//!
//! * a **clean oblivious** route (no detour) is kept unless an added
//!   fault lands on one of its nodes or links — no other plan change
//!   can alter what [`plan_route`] returns for it;
//! * a **detoured** route is respliced on *any* effective delta: its
//!   BFS tail is discovery-order sensitive to every fault in the plan
//!   (and its attribution may need re-stamping);
//! * an **unroutable** pair stays unroutable under pure-fault deltas
//!   and is only recomputed when the delta repairs something.
//!
//! Memory: the CSR arena costs `4 * (nodes_in_routes + pairs + 1)` bytes
//! plus the pair index — see [`RouteTable::heap_bytes`] (the same
//! accounting convention as `hb_graphs::Graph::heap_bytes`, quoted in
//! DESIGN.md §9 and §11).
//!
//! The pair index itself is flat too: a CSR keyed by dense source id
//! (`row_offsets[src] .. row_offsets[src + 1]` brackets a sorted run of
//! destinations), so [`RouteTable::slot`] is two array reads plus a
//! binary search over one source's destinations — no tree walk, no
//! per-lookup hashing. Detour attribution is a `Copy`
//! [`FaultReason`] id rather than an interned `String`, shrinking
//! [`Detour`] to two words and making snapshots allocation-free.

use crate::faults::{FaultPlan, FaultReason};
use crate::sim::Injection;
use crate::topology::{NetTopology, MAX_PRODUCTIVE};
use hb_graphs::{Graph, NodeId};
use std::collections::{BTreeMap, VecDeque};

/// Deterministic BFS route from `src` to `dst` over the survivor graph
/// (skipping faulty nodes and links). `None` when unreachable. Neighbor
/// order is the graph's sorted adjacency, so the result is a canonical
/// shortest survivor path.
pub fn survivor_route(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    plan: &FaultPlan,
) -> Option<Vec<NodeId>> {
    if plan.is_node_faulty(src) || plan.is_node_faulty(dst) {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    let n = g.num_nodes();
    let mut parent = vec![usize::MAX; n];
    parent[src] = src;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &w in g.neighbors(u) {
            let w = w as usize;
            if parent[w] != usize::MAX || plan.is_link_faulty(u, w) {
                continue;
            }
            parent[w] = u;
            if w == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(w);
        }
    }
    None
}

/// [`survivor_route`] for **implicit** topologies: the same
/// deterministic BFS over the survivor graph, but neighbors come from
/// [`NetTopology::neighbors_into`] (ascending node-id order — identical
/// to the sorted adjacency the explicit BFS walks, so the two functions
/// return identical canonical paths) and the visited/parent state lives
/// in a sparse map sized by nodes actually reached, never by the
/// topology's node count.
pub fn survivor_route_implicit(
    topo: &dyn NetTopology,
    src: NodeId,
    dst: NodeId,
    plan: &FaultPlan,
) -> Option<Vec<NodeId>> {
    if plan.is_node_faulty(src) || plan.is_node_faulty(dst) {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    parent.insert(src, src);
    let mut q = VecDeque::from([src]);
    let mut buf = [0 as NodeId; MAX_PRODUCTIVE];
    while let Some(u) = q.pop_front() {
        let k = topo.neighbors_into(u, &mut buf);
        for &w in &buf[..k] {
            if parent.contains_key(&w) || plan.is_link_faulty(u, w) {
                continue;
            }
            parent.insert(w, u);
            if w == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(w);
        }
    }
    None
}

/// Where a detour begins (hop index) and the attributed fault reason.
/// `FaultReason` is `Copy`, so a `Detour` is two machine words — cloned
/// freely, never heap-allocated. Render the reason with `Display` to get
/// the historical string form.
pub type Detour = Option<(u32, FaultReason)>;

/// The oblivious route with at most one fault detour spliced in: the
/// packet flies the healthy prefix of `topo.route`, then a BFS survivor
/// path from the node in front of the first faulty link (the detour
/// itself avoids every fault, so one splice suffices). Returns the route
/// plus the hop index where the detour begins and the attributed reason,
/// or `None` when the packet cannot be routed (faulty endpoint or no
/// survivor path).
pub fn plan_route(
    topo: &dyn NetTopology,
    src: NodeId,
    dst: NodeId,
    plan: &FaultPlan,
) -> Option<(Vec<NodeId>, Detour)> {
    if plan.is_node_faulty(src) || plan.is_node_faulty(dst) {
        return None;
    }
    let mut route = topo.route(src, dst);
    for i in 0..route.len().saturating_sub(1) {
        let Some(reason) = plan.link_fault_id(route[i], route[i + 1]) else {
            continue;
        };
        // The two BFS variants walk neighbors in the same ascending
        // order, so the detour is the same canonical path either way;
        // the implicit one just never materialises per-node state.
        let tail = match topo.explicit_graph() {
            Some(g) => survivor_route(g, route[i], dst, plan)?,
            None => survivor_route_implicit(topo, route[i], dst, plan)?,
        };
        route.truncate(i + 1);
        route.extend_from_slice(&tail[1..]);
        return Some((route, Some((i as u32, reason))));
    }
    Some((route, None))
}

/// Detour sentinel in the packed per-slot arrays: no detour on this route.
const NO_DETOUR: u32 = u32::MAX;

/// Flat CSR arena of routes shared by [`RouteTable`] and [`RouteCache`].
/// Slots are dense append-order ids; the pair -> slot index lives in the
/// owning table/cache, not here.
#[derive(Clone, Debug, Default)]
struct RouteArena {
    /// Slot `s` occupies `nodes[offsets[s] as usize .. offsets[s+1] as usize]`.
    /// An **empty** range means the pair is unroutable under the plan.
    offsets: Vec<u32>,
    /// Concatenated route nodes.
    nodes: Vec<u32>,
    /// Per slot: hop index where the detour begins, or [`NO_DETOUR`].
    detour_hop: Vec<u32>,
    /// Per slot: attributed fault, meaningful only with a detour
    /// (a placeholder value sits under [`NO_DETOUR`] hops).
    detour_reason: Vec<FaultReason>,
}

impl RouteArena {
    fn new() -> Self {
        Self {
            offsets: vec![0],
            ..Self::default()
        }
    }

    /// Number of slots stored.
    fn len(&self) -> usize {
        self.detour_hop.len()
    }

    /// Appends a computed route, returning its slot.
    fn push(&mut self, planned: Option<(Vec<NodeId>, Detour)>) -> u32 {
        let slot = u32::try_from(self.len()).expect("invariant: fewer than 2^32 route slots");
        let (mut hop, mut reason) = (NO_DETOUR, FaultReason::Node(0));
        if let Some((route, detour)) = planned {
            self.nodes.extend(
                route
                    .iter()
                    .map(|&v| u32::try_from(v).expect("invariant: node ids fit u32")),
            );
            if let Some((at, r)) = detour {
                hop = at;
                reason = r;
            }
        }
        self.offsets.push(
            u32::try_from(self.nodes.len()).expect("invariant: route arena stays under 2^32 nodes"),
        );
        self.detour_hop.push(hop);
        self.detour_reason.push(reason);
        slot
    }

    /// Appends a verbatim copy of an already-interned route (path in
    /// arena form plus detour), returning the new slot. Used by
    /// [`ChurnRoutes`] to freeze cache routes per epoch.
    fn push_copy(&mut self, path: &[u32], detour: Detour) -> u32 {
        let slot = u32::try_from(self.len()).expect("invariant: fewer than 2^32 route slots");
        self.nodes.extend_from_slice(path);
        self.offsets.push(
            u32::try_from(self.nodes.len()).expect("invariant: route arena stays under 2^32 nodes"),
        );
        let (hop, reason) = detour.unwrap_or((NO_DETOUR, FaultReason::Node(0)));
        self.detour_hop.push(hop);
        self.detour_reason.push(reason);
        slot
    }

    fn path(&self, slot: u32) -> &[u32] {
        let s = slot as usize;
        &self.nodes[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    fn detour(&self, slot: u32) -> Detour {
        let hop = self.detour_hop[slot as usize];
        (hop != NO_DETOUR).then(|| (hop, self.detour_reason[slot as usize]))
    }

    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<u32>()
            + self.nodes.capacity() * size_of::<u32>()
            + self.detour_hop.capacity() * size_of::<u32>()
            + self.detour_reason.capacity() * size_of::<FaultReason>()
    }
}

/// Immutable precomputed route table for one `(topology, FaultPlan)`
/// pair, covering a fixed set of endpoint pairs (typically the distinct
/// pairs of a workload — **not** all `n^2` pairs, so hotspot and
/// permutation traffic pay for their few distinct routes only).
///
/// Slots are dense `u32`s in first-seen pair order; packets store the
/// slot instead of an owned route.
///
/// The pair index is a CSR over the **distinct sources of the build
/// set** (not over all node ids, so the index costs O(pairs) even on
/// million-node implicit shapes): `srcs` is the sorted source list,
/// `row_offsets[i] .. row_offsets[i + 1]` brackets source `srcs[i]`'s
/// run of `(dst, slot)` entries in `cols`/`slots`, with `cols` sorted
/// per row. [`Self::slot`] is therefore two binary searches (source row,
/// then destination within the row).
#[derive(Clone, Debug)]
pub struct RouteTable {
    arena: RouteArena,
    /// Sorted distinct sources of the build set.
    srcs: Vec<u32>,
    /// CSR row starts into `cols`/`slots`; length `srcs.len() + 1`.
    row_offsets: Vec<u32>,
    /// Destination ids, ascending within each source row.
    cols: Vec<u32>,
    /// Slot of the route for the matching `cols` entry.
    slots: Vec<u32>,
    /// Pairs with no survivor route under the plan.
    unroutable_pairs: u64,
}

impl RouteTable {
    /// Builds the table for the given endpoint pairs (duplicates are
    /// deduplicated; slot order is first-seen order). With an empty
    /// `plan` this is exactly `topo.route` per distinct pair; otherwise
    /// each route gets at most one survivor-BFS detour spliced in by
    /// [`plan_route`].
    #[must_use]
    pub fn build(
        topo: &dyn NetTopology,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
        plan: &FaultPlan,
    ) -> Self {
        let mut arena = RouteArena::new();
        // Per-source sorted (dst, slot) rows, keyed by the sources that
        // actually appear — O(distinct pairs) state, independent of the
        // topology's node count (implicit million-node shapes never pay
        // for a dense per-node index).
        let mut rows: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        let mut unroutable_pairs = 0u64;
        let faultless = plan.is_empty();
        for (src, dst) in pairs {
            let key = (
                u32::try_from(src).expect("invariant: node ids fit u32"),
                u32::try_from(dst).expect("invariant: node ids fit u32"),
            );
            let row = rows.entry(key.0).or_default();
            let at = match row.binary_search_by_key(&key.1, |&(d, _)| d) {
                Ok(_) => continue, // duplicate pair, first slot wins
                Err(at) => at,
            };
            let planned = if faultless {
                Some((topo.route(src, dst), None))
            } else {
                plan_route(topo, src, dst, plan)
            };
            if planned.is_none() {
                unroutable_pairs += 1;
            }
            let slot = arena.push(planned);
            row.insert(at, (key.1, slot));
        }
        let mut srcs = Vec::with_capacity(rows.len());
        let mut row_offsets = Vec::with_capacity(rows.len() + 1);
        let mut cols = Vec::with_capacity(arena.len());
        let mut slots = Vec::with_capacity(arena.len());
        row_offsets.push(0);
        for (src, row) in &rows {
            srcs.push(*src);
            for &(d, s) in row {
                cols.push(d);
                slots.push(s);
            }
            row_offsets.push(u32::try_from(cols.len()).expect("invariant: pair index fits u32"));
        }
        Self {
            arena,
            srcs,
            row_offsets,
            cols,
            slots,
            unroutable_pairs,
        }
    }

    /// Builds the table for the distinct endpoint pairs of a workload.
    #[must_use]
    pub fn for_injections(
        topo: &dyn NetTopology,
        injections: &[Injection],
        plan: &FaultPlan,
    ) -> Self {
        Self::build(topo, injections.iter().map(|i| (i.src, i.dst)), plan)
    }

    /// Slot of `(src, dst)`, if the pair was in the build set: a binary
    /// search over the distinct sources brackets the source's row, then
    /// a binary search over that row's sorted destinations.
    // analyze: hot(CSR route lookup runs once per injected packet)
    #[must_use]
    pub fn slot(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        let Ok(src) = u32::try_from(src) else {
            return None;
        };
        let i = self.srcs.binary_search(&src).ok()?;
        let lo = self.row_offsets[i] as usize;
        let hi = self.row_offsets[i + 1] as usize;
        let row = &self.cols[lo..hi];
        // analyze: allow(narrowing-cast, node ids < 2^32 by the src try_from guard above; branch-free hot path)
        row.binary_search(&(dst as u32))
            .ok()
            .map(|i| self.slots[lo + i])
    }

    /// The route stored in `slot` (node ids). **Empty** means the pair
    /// is unroutable under the plan; a single node means self-delivery.
    // analyze: hot(per-hop path fetch on the forwarding cycle path)
    #[must_use]
    pub fn path(&self, slot: u32) -> &[u32] {
        self.arena.path(slot)
    }

    /// Hop index where the route's detour begins plus the attributed
    /// fault, `None` for purely oblivious routes.
    #[must_use]
    pub fn detour(&self, slot: u32) -> Detour {
        self.arena.detour(slot)
    }

    /// Number of distinct pairs in the table.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.arena.len()
    }

    /// Total nodes stored across every route — the deterministic work
    /// unit of the `sim/route_build` profiler phase (one unit per node
    /// written into the CSR arena).
    #[must_use]
    pub fn total_route_nodes(&self) -> usize {
        self.arena.nodes.len()
    }

    /// Pairs with no survivor route under the plan.
    #[must_use]
    pub fn unroutable_pairs(&self) -> u64 {
        self.unroutable_pairs
    }

    /// Approximate heap footprint in bytes (same convention as
    /// `hb_graphs::Graph::heap_bytes`).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.arena.heap_bytes()
            + self.srcs.capacity() * size_of::<u32>()
            + self.row_offsets.capacity() * size_of::<u32>()
            + self.cols.capacity() * size_of::<u32>()
            + self.slots.capacity() * size_of::<u32>()
    }
}

/// Work done by one incremental [`RouteCache::repair`] delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Memoized pairs examined.
    pub scanned: u64,
    /// Pairs whose route survived the delta verbatim (same slot).
    pub kept: u64,
    /// Pairs respliced under the new plan (including ones that became
    /// or stopped being unroutable).
    pub respliced: u64,
    /// Route nodes written while resplicing — the deterministic work
    /// unit of the `sim/route_repair` profiler phase.
    pub work: u64,
}

impl RepairStats {
    /// Accumulates another delta's stats into this one.
    pub fn absorb(&mut self, other: RepairStats) {
        self.scanned += other.scanned;
        self.kept += other.kept;
        self.respliced += other.respliced;
        self.work += other.work;
    }
}

/// The structural difference between two [`FaultPlan`]s, in the form
/// the keep/invalidate rule consumes: which faults were *added* (they
/// can break clean routes) and whether anything was *repaired* (only
/// repairs can resurrect unroutable pairs).
struct PlanDelta {
    added_nodes: Vec<u32>,
    added_links: Vec<(u32, u32)>,
    has_repair: bool,
}

impl PlanDelta {
    fn between(old: &FaultPlan, new: &FaultPlan) -> Self {
        let id = |x: NodeId| u32::try_from(x).expect("invariant: node ids fit u32");
        let old_nodes: Vec<NodeId> = old.nodes().collect();
        let old_links: Vec<(NodeId, NodeId)> = old.links().collect();
        let added_nodes = new
            .nodes()
            .filter(|v| old_nodes.binary_search(v).is_err())
            .map(id)
            .collect();
        let added_links = new
            .links()
            .filter(|l| old_links.binary_search(l).is_err())
            .map(|(u, v)| (id(u), id(v)))
            .collect();
        let has_repair = old.nodes().any(|v| !new.is_node_faulty(v))
            || old
                .links()
                .any(|l| new.links().all(|m| m != l) && !new.is_link_faulty(l.0, l.1));
        Self {
            added_nodes,
            added_links,
            has_repair,
        }
    }

    /// Whether an added fault lands on the given (fault-free) path.
    fn touches(&self, path: &[u32]) -> bool {
        path.iter()
            .any(|v| self.added_nodes.binary_search(v).is_ok())
            || path.windows(2).any(|w| {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                self.added_links.binary_search(&key).is_ok()
            })
    }
}

/// The keep/invalidate rule from the module docs, applied to one
/// memoized slot. `true` means the stored route is byte-identical to
/// what a rebuild under the new plan would produce.
fn slot_survives(arena: &RouteArena, slot: u32, delta: &PlanDelta) -> bool {
    let path = arena.path(slot);
    if path.is_empty() {
        // Unroutable stays unroutable when the delta only adds faults.
        return !delta.has_repair;
    }
    if arena.detour(slot).is_some() {
        // Detoured tails are BFS discovery-order sensitive to every
        // fault in the plan; resplice on any effective delta.
        return false;
    }
    !delta.touches(path)
}

/// Lazily memoized route store keyed by a **fault epoch**: call
/// [`RouteCache::set_plan`] (or, eagerly, [`RouteCache::repair`]) when
/// the fault set changes. Either way the memo is repaired
/// *incrementally*: routes the delta cannot affect keep their slots —
/// and those slots stay valid across the epoch bump — while affected
/// routes are invalidated (their old slots are dead, rejected by a
/// `debug_assert` in [`RouteCache::path`]/[`RouteCache::detour`]).
///
/// Useful for fault campaigns that sweep many plans over one topology:
/// within an epoch repeated lookups of the same pair hit the table, not
/// a fresh BFS — and across epochs only the routes a delta actually
/// touched are ever recomputed.
#[derive(Clone, Debug, Default)]
pub struct RouteCache {
    plan: FaultPlan,
    epoch: u64,
    arena: RouteArena,
    /// Per-source sorted `(dst, slot)` rows, grown on demand — the lazy
    /// counterpart of [`RouteTable`]'s frozen CSR.
    rows: Vec<Vec<(u32, u32)>>,
    /// Per arena slot: still referenced by `rows`? Invalidated slots
    /// stay in the arena (append-only) but are dead to callers.
    live: Vec<bool>,
    /// Live slot count == memoized pair count.
    live_pairs: usize,
}

impl RouteCache {
    /// An empty cache with an empty fault plan at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            arena: RouteArena::new(),
            ..Self::default()
        }
    }

    /// Current fault epoch; bumped by every effective [`Self::set_plan`].
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The plan routes are currently computed under.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Installs a new fault plan. A plan equal to the current one is a
    /// no-op (epoch and memo untouched); otherwise the epoch is bumped
    /// and the memo repaired **lazily**: routes the delta cannot affect
    /// keep their slots, affected pairs are forgotten and recomputed by
    /// the next [`Self::resolve`]. Slots of affected routes are dead
    /// after this call ([`Self::path`] rejects them in debug builds).
    pub fn set_plan(&mut self, plan: &FaultPlan) {
        if *plan == self.plan {
            return;
        }
        let delta = PlanDelta::between(&self.plan, plan);
        self.plan = plan.clone();
        self.epoch += 1;
        let arena = &self.arena;
        let live = &mut self.live;
        let mut live_pairs = self.live_pairs;
        for row in &mut self.rows {
            row.retain(|&(_, slot)| {
                let keep = slot_survives(arena, slot, &delta);
                if !keep {
                    live[slot as usize] = false;
                    live_pairs -= 1;
                }
                keep
            });
        }
        self.live_pairs = live_pairs;
    }

    /// Eagerly repairs the memo for a new fault plan: the in-place
    /// counterpart of [`Self::set_plan`] used by the churn engines once
    /// per timeline delta. Every memoized pair is classified in
    /// ascending `(src, dst)` order; survivors keep their slots,
    /// affected pairs are respliced immediately under the new plan (so
    /// the memo stays complete — no lazy holes). Returns what the delta
    /// cost: `O(affected pairs)` resplices instead of the
    /// `O(memoized pairs × BFS)` a full rebuild pays.
    // analyze: hot(repair: per-delta route resplice under fault churn)
    pub fn repair(&mut self, topo: &dyn NetTopology, plan: &FaultPlan) -> RepairStats {
        let mut stats = RepairStats::default();
        if *plan == self.plan {
            return stats;
        }
        let delta = PlanDelta::between(&self.plan, plan);
        self.plan = plan.clone();
        self.epoch += 1;
        for src in 0..self.rows.len() {
            for i in 0..self.rows[src].len() {
                let (dst_key, slot) = self.rows[src][i];
                stats.scanned += 1;
                if slot_survives(&self.arena, slot, &delta) {
                    stats.kept += 1;
                    continue;
                }
                self.live[slot as usize] = false;
                let planned = plan_route(topo, src, dst_key as usize, &self.plan);
                if let Some((route, _)) = &planned {
                    stats.work += route.len() as u64;
                }
                let fresh = self.arena.push(planned);
                self.live.push(true);
                self.rows[src][i].1 = fresh;
                stats.respliced += 1;
            }
        }
        stats
    }

    /// Slot of the route for `(src, dst)` under the current plan,
    /// computing and memoizing it on first use.
    pub fn resolve(&mut self, topo: &dyn NetTopology, src: NodeId, dst: NodeId) -> u32 {
        let dst_key = u32::try_from(dst).expect("invariant: node ids fit u32");
        if src >= self.rows.len() {
            self.rows.resize_with(src + 1, Vec::new);
        }
        let at = match self.rows[src].binary_search_by_key(&dst_key, |&(d, _)| d) {
            Ok(i) => return self.rows[src][i].1,
            Err(at) => at,
        };
        let planned = if self.plan.is_empty() {
            Some((topo.route(src, dst), None))
        } else {
            plan_route(topo, src, dst, &self.plan)
        };
        let slot = self.arena.push(planned);
        self.live.push(true);
        self.live_pairs += 1;
        self.rows[src].insert(at, (dst_key, slot));
        slot
    }

    /// The memoized route in `slot` (empty = unroutable). Slots stay
    /// valid across plan deltas **iff** the route survived them; a
    /// handle to an invalidated route is a logic error, rejected here in
    /// debug builds.
    #[must_use]
    pub fn path(&self, slot: u32) -> &[u32] {
        debug_assert!(
            self.live[slot as usize],
            "stale route slot {slot}: invalidated by a plan delta (epoch {})",
            self.epoch
        );
        self.arena.path(slot)
    }

    /// Detour attribution of the route in `slot` (as [`RouteTable::detour`]).
    #[must_use]
    pub fn detour(&self, slot: u32) -> Detour {
        debug_assert!(
            self.live[slot as usize],
            "stale route slot {slot}: invalidated by a plan delta (epoch {})",
            self.epoch
        );
        self.arena.detour(slot)
    }

    /// Whether `slot` still backs a memoized route (`false` once a plan
    /// delta invalidates it).
    #[must_use]
    pub fn is_live(&self, slot: u32) -> bool {
        self.live[slot as usize]
    }

    /// Distinct pairs memoized under the current plan (live slots —
    /// routes invalidated by a delta no longer count).
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.live_pairs
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.arena.heap_bytes()
            + self.rows.capacity() * size_of::<Vec<(u32, u32)>>()
            + self
                .rows
                .iter()
                .map(|r| r.capacity() * size_of::<(u32, u32)>())
                .sum::<usize>()
            + self.live.capacity()
            + self.plan.nodes().count() * size_of::<NodeId>()
    }
}

/// Frozen per-**injection** routes for one fault-timeline run, compiled
/// before the engines start (`crate::churn::compile`): each injection's
/// route is resolved under the plan in force at its injection cycle and
/// copied out of the [`RouteCache`] into an immutable arena, so engines
/// never read a slot the next delta could invalidate, and the sharded
/// engine shares the compile result read-only across threads.
#[derive(Clone, Debug)]
pub(crate) struct ChurnRoutes {
    arena: RouteArena,
    /// Per injection (by index into the run's injection slice): the
    /// arena slot of the route it was admitted with.
    slots: Vec<u32>,
    /// Cache slot -> arena slot, the dedup memo: cache slots are stable
    /// exactly as long as their route is live, so a kept route is
    /// interned once across every epoch that keeps it.
    interned: BTreeMap<u32, u32>,
}

impl ChurnRoutes {
    pub(crate) fn with_capacity(injections: usize) -> Self {
        Self {
            arena: RouteArena::new(),
            slots: Vec::with_capacity(injections),
            interned: BTreeMap::new(),
        }
    }

    /// Records the route for the next injection: the cache route in
    /// `cache_slot`, copied into the frozen arena on first sight.
    pub(crate) fn assign(&mut self, cache: &RouteCache, cache_slot: u32) {
        let slot = match self.interned.get(&cache_slot) {
            Some(&s) => s,
            None => {
                let s = self
                    .arena
                    .push_copy(cache.path(cache_slot), cache.detour(cache_slot));
                self.interned.insert(cache_slot, s);
                s
            }
        };
        self.slots.push(slot);
    }

    /// Drops dedup entries for cache slots a delta invalidated (their
    /// ids must not alias future cache slots' routes — cache arenas are
    /// append-only so ids are never reused, but the memo would otherwise
    /// grow without bound on long timelines).
    pub(crate) fn forget_dead(&mut self, cache: &RouteCache) {
        self.interned.retain(|&slot, _| cache.is_live(slot));
    }

    pub(crate) fn slot_of(&self, inj: usize) -> u32 {
        self.slots[inj]
    }

    pub(crate) fn path(&self, slot: u32) -> &[u32] {
        self.arena.path(slot)
    }

    pub(crate) fn detour(&self, slot: u32) -> Detour {
        self.arena.detour(slot)
    }

    /// Distinct routes frozen (the `sim/route_build` pair count for
    /// churn runs).
    pub(crate) fn num_pairs(&self) -> usize {
        self.arena.len()
    }

    /// Total nodes stored (the `sim/route_build` work unit).
    pub(crate) fn total_route_nodes(&self) -> usize {
        self.arena.nodes.len()
    }
}

/// Where an engine reads routes from: a per-pair [`RouteTable`] (static
/// plan — one route per endpoint pair for the whole run) or per-
/// injection [`ChurnRoutes`] (fault timeline — the route each packet
/// was admitted with). Engines address routes by slot either way; only
/// admission differs, via [`RouteSrc::slot_for`].
#[derive(Clone, Copy)]
pub(crate) enum RouteSrc<'a> {
    Table(&'a RouteTable),
    Churn(&'a ChurnRoutes),
}

impl<'a> RouteSrc<'a> {
    /// Route slot for injection `inj` (its index in the run's sorted
    /// injection slice) from `src` to `dst`. `None` only for a table
    /// miss, which engines treat as a build-set invariant violation.
    pub(crate) fn slot_for(&self, inj: usize, src: NodeId, dst: NodeId) -> Option<u32> {
        match *self {
            RouteSrc::Table(t) => t.slot(src, dst),
            RouteSrc::Churn(c) => Some(c.slot_of(inj)),
        }
    }

    pub(crate) fn path(&self, slot: u32) -> &'a [u32] {
        match *self {
            RouteSrc::Table(t) => t.path(slot),
            RouteSrc::Churn(c) => c.path(slot),
        }
    }

    pub(crate) fn detour(&self, slot: u32) -> Detour {
        match *self {
            RouteSrc::Table(t) => t.detour(slot),
            RouteSrc::Churn(c) => c.detour(slot),
        }
    }

    /// Distinct routes held — the `sim/route_build` profiler pair count.
    pub(crate) fn num_pairs(&self) -> usize {
        match *self {
            RouteSrc::Table(t) => t.num_pairs(),
            RouteSrc::Churn(c) => c.num_pairs(),
        }
    }

    /// Total route nodes held — the `sim/route_build` work unit.
    pub(crate) fn total_route_nodes(&self) -> usize {
        match *self {
            RouteSrc::Table(t) => t.total_route_nodes(),
            RouteSrc::Churn(c) => c.total_route_nodes(),
        }
    }

    /// Whether routes came from a fault timeline (drives unroutable
    /// accounting in the bounded engine).
    pub(crate) fn is_churn(&self) -> bool {
        matches!(self, RouteSrc::Churn(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{HbRouteOrder, HyperButterflyNet, HypercubeNet};

    fn hb() -> HyperButterflyNet {
        HyperButterflyNet::new(2, 3, HbRouteOrder::CubeFirst).unwrap()
    }

    #[test]
    fn faultless_table_matches_topology_routes() {
        let t = hb();
        let n = t.num_nodes();
        let pairs: Vec<_> = (0..n).map(|v| (v, (v * 7 + 3) % n)).collect();
        let table = RouteTable::build(&t, pairs.iter().copied(), &FaultPlan::new());
        assert_eq!(table.num_pairs(), pairs.len());
        assert_eq!(table.unroutable_pairs(), 0);
        for &(src, dst) in &pairs {
            let slot = table.slot(src, dst).unwrap();
            let expect: Vec<u32> = t.route(src, dst).iter().map(|&v| v as u32).collect();
            assert_eq!(table.path(slot), expect.as_slice());
            assert_eq!(table.detour(slot), None);
        }
        assert!(table.heap_bytes() > 0);
        let expect_nodes: usize = pairs.iter().map(|&(s, d)| t.route(s, d).len()).sum();
        assert_eq!(table.total_route_nodes(), expect_nodes);
    }

    #[test]
    fn duplicate_pairs_share_one_slot() {
        let t = HypercubeNet::new(4).unwrap();
        let inj: Vec<Injection> = (0..32)
            .map(|i| Injection {
                src: 0,
                dst: 15,
                at: i,
            })
            .collect();
        let table = RouteTable::for_injections(&t, &inj, &FaultPlan::new());
        assert_eq!(table.num_pairs(), 1);
        assert_eq!(table.path(0), &[0, 1, 3, 7, 15]);
    }

    #[test]
    fn route_lengths_equal_core_distances_on_hb() {
        // Remark 6/8: the optimal HB route concatenates the hypercube
        // and butterfly legs, so table route length == hb-core distance.
        for (m, n) in [(1u32, 3u32), (2, 3), (2, 4)] {
            let t = HyperButterflyNet::new(m, n, HbRouteOrder::CubeFirst).unwrap();
            let nn = t.num_nodes();
            let pairs: Vec<_> = (0..nn.min(40)).map(|v| (v, (v * 13 + 5) % nn)).collect();
            let table = RouteTable::build(&t, pairs.iter().copied(), &FaultPlan::new());
            let hb = hb_core::HyperButterfly::new(m, n).unwrap();
            for &(src, dst) in &pairs {
                let slot = table.slot(src, dst).unwrap();
                let hops = table.path(slot).len() - 1;
                let d = hb_core::routing::distance(&hb, hb.node(src), hb.node(dst));
                assert_eq!(hops as u32, d, "HB({m},{n}) {src}->{dst}");
            }
        }
    }

    #[test]
    fn faulted_table_matches_plan_route_splices() {
        let t = hb();
        let g = t.graph();
        let mut plan = FaultPlan::new();
        plan.add_node(5).add_link(0, 2).add_link(1, 3);
        let n = t.num_nodes();
        let pairs: Vec<_> = (0..n).map(|v| (v, (v * 11 + 1) % n)).collect();
        let table = RouteTable::build(&t, pairs.iter().copied(), &plan);
        for &(src, dst) in &pairs {
            let slot = table.slot(src, dst).unwrap();
            match plan_route(&t, src, dst, &plan) {
                None => assert!(table.path(slot).is_empty(), "{src}->{dst}"),
                Some((route, detour)) => {
                    let expect: Vec<u32> = route.iter().map(|&v| v as u32).collect();
                    assert_eq!(table.path(slot), expect.as_slice());
                    match (table.detour(slot), detour) {
                        (None, None) => {}
                        (Some((h, r)), Some((eh, er))) => {
                            assert_eq!(h, eh);
                            assert_eq!(r, er);
                        }
                        other => panic!("detour mismatch {other:?}"),
                    }
                    // The spliced route is fault-free end to end.
                    for w in table.path(slot).windows(2) {
                        assert!(g.has_edge(w[0] as usize, w[1] as usize));
                        assert!(!plan.is_link_faulty(w[0] as usize, w[1] as usize));
                    }
                }
            }
        }
    }

    #[test]
    fn unroutable_pairs_have_empty_paths() {
        let t = HypercubeNet::new(3).unwrap();
        let mut plan = FaultPlan::new();
        plan.add_link(7, 3).add_link(7, 5).add_link(7, 6); // isolate 7
        let table = RouteTable::build(&t, [(0, 7), (0, 2)], &plan);
        assert_eq!(table.unroutable_pairs(), 1);
        assert!(table.path(table.slot(0, 7).unwrap()).is_empty());
        assert!(!table.path(table.slot(0, 2).unwrap()).is_empty());
    }

    #[test]
    fn cache_epoch_invalidation_recomputes_under_new_plan() {
        let t = HypercubeNet::new(4).unwrap();
        let mut cache = RouteCache::new();
        assert_eq!(cache.epoch(), 0);
        let s0 = cache.resolve(&t, 0, 15);
        assert_eq!(cache.path(s0), &[0, 1, 3, 7, 15]);
        assert_eq!(cache.detour(s0), None);

        // Same plan: no-op, memo intact.
        cache.set_plan(&FaultPlan::new());
        assert_eq!(cache.epoch(), 0);
        assert_eq!(cache.num_pairs(), 1);

        // New plan: epoch bump, memo cleared, spliced route returned —
        // and it matches what the flight recorder's BFS would fly.
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1);
        cache.set_plan(&plan);
        assert_eq!(cache.epoch(), 1);
        assert_eq!(cache.num_pairs(), 0);
        let s1 = cache.resolve(&t, 0, 15);
        let (expect, detour) = plan_route(&t, 0, 15, &plan).unwrap();
        let expect: Vec<u32> = expect.iter().map(|&v| v as u32).collect();
        assert_eq!(cache.path(s1), expect.as_slice());
        let (hop, reason) = cache.detour(s1).unwrap();
        assert_eq!((hop, reason), (0, FaultReason::Link(0, 1)));
        assert_eq!(reason.to_string(), "link 0-1 faulty");
        assert_eq!(detour, Some((0, FaultReason::Link(0, 1))));
        // Still 4 hops: the survivor graph keeps a shortest detour.
        assert_eq!(cache.path(s1).len() - 1, 4);

        // Memoized on second resolve (same slot back).
        assert_eq!(cache.resolve(&t, 0, 15), s1);
        assert_eq!(cache.num_pairs(), 1);
    }

    #[test]
    fn set_plan_keeps_routes_the_delta_cannot_touch() {
        let t = hb();
        let n = t.num_nodes();
        let pairs: Vec<_> = (0..n).map(|v| (v, (v * 7 + 3) % n)).collect();
        let mut cache = RouteCache::new();
        let slots: Vec<u32> = pairs
            .iter()
            .map(|&(s, d)| cache.resolve(&t, s, d))
            .collect();
        assert_eq!(cache.num_pairs(), pairs.len());

        // Cut the first link of pair 0's route: that route must die,
        // routes elsewhere must keep their slots byte-identically.
        let r0 = t.route(pairs[0].0, pairs[0].1);
        let mut plan = FaultPlan::new();
        plan.add_link(r0[0], r0[1]);
        cache.set_plan(&plan);
        assert_eq!(cache.epoch(), 1);
        assert!(!cache.is_live(slots[0]));
        assert!(cache.num_pairs() < pairs.len());

        let mut kept = 0;
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let survived = cache.is_live(slots[i]);
            let slot = cache.resolve(&t, s, d);
            if survived {
                assert_eq!(slot, slots[i], "{s}->{d} must keep its slot");
                kept += 1;
            }
            // Every route — kept or respliced — matches a fresh
            // computation under the new plan.
            let (route, detour) = plan_route(&t, s, d, &plan).unwrap();
            let expect: Vec<u32> = route.iter().map(|&v| v as u32).collect();
            assert_eq!(cache.path(slot), expect.as_slice(), "{s}->{d}");
            assert_eq!(cache.detour(slot), detour, "{s}->{d}");
        }
        assert!(kept > 0, "a single cut link cannot touch every route");
        assert!(kept < pairs.len());
        assert_eq!(cache.num_pairs(), pairs.len());
    }

    #[test]
    fn eager_repair_matches_fresh_rebuild_and_counts_work() {
        let t = hb();
        let n = t.num_nodes();
        let pairs: Vec<_> = (0..n).map(|v| (v, (v * 11 + 1) % n)).collect();
        let mut cache = RouteCache::new();
        for &(s, d) in &pairs {
            cache.resolve(&t, s, d);
        }
        let mut plan = FaultPlan::new();
        plan.add_node_at(5, 0);
        let stats = cache.repair(&t, &plan);
        assert_eq!(stats.scanned, pairs.len() as u64);
        assert_eq!(stats.kept + stats.respliced, stats.scanned);
        assert!(stats.kept > 0, "one faulty node cannot touch every route");
        assert!(stats.respliced > 0, "routes through node 5 must resplice");
        assert!(stats.work > 0);
        assert_eq!(cache.epoch(), 1);

        // Identical plan: strict no-op.
        assert_eq!(cache.repair(&t, &plan), RepairStats::default());
        assert_eq!(cache.epoch(), 1);

        // The memo stays complete (repair is eager) and byte-identical
        // to a rebuild from scratch, attribution included.
        assert_eq!(cache.num_pairs(), pairs.len());
        for &(s, d) in &pairs {
            let slot = cache.resolve(&t, s, d);
            match plan_route(&t, s, d, &plan) {
                None => assert!(cache.path(slot).is_empty(), "{s}->{d}"),
                Some((route, detour)) => {
                    let expect: Vec<u32> = route.iter().map(|&v| v as u32).collect();
                    assert_eq!(cache.path(slot), expect.as_slice(), "{s}->{d}");
                    assert_eq!(cache.detour(slot), detour, "{s}->{d}");
                }
            }
        }

        // Revert to the empty plan: unroutable pairs and detours heal.
        let back = cache.repair(&t, &FaultPlan::new());
        assert!(back.respliced > 0);
        assert_eq!(cache.epoch(), 2);
        assert_eq!(cache.num_pairs(), pairs.len());
        for &(s, d) in &pairs {
            let slot = cache.resolve(&t, s, d);
            let expect: Vec<u32> = t.route(s, d).iter().map(|&v| v as u32).collect();
            assert_eq!(cache.path(slot), expect.as_slice());
            assert_eq!(cache.detour(slot), None);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale route slot")]
    fn stale_slots_from_pre_delta_epochs_are_rejected() {
        let t = HypercubeNet::new(4).unwrap();
        let mut cache = RouteCache::new();
        let s = cache.resolve(&t, 0, 15); // flies 0-1-3-7-15
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1);
        cache.set_plan(&plan);
        assert!(!cache.is_live(s));
        let _ = cache.path(s);
    }

    #[test]
    fn churn_routes_freeze_and_dedup_cache_slots() {
        let t = HypercubeNet::new(4).unwrap();
        let mut cache = RouteCache::new();
        let a = cache.resolve(&t, 0, 15);
        let b = cache.resolve(&t, 2, 9);
        let mut churn = ChurnRoutes::with_capacity(4);
        churn.assign(&cache, a);
        churn.assign(&cache, b);
        churn.assign(&cache, a); // same cache slot: interned once
        assert_eq!(churn.num_pairs(), 2);
        assert_eq!(churn.slot_of(0), churn.slot_of(2));
        assert_eq!(churn.path(churn.slot_of(0)), cache.path(a));
        assert_eq!(churn.detour(churn.slot_of(1)), cache.detour(b));
        assert_eq!(
            churn.total_route_nodes(),
            cache.path(a).len() + cache.path(b).len()
        );

        // After a delta kills `a`, the resolved replacement is a fresh
        // cache slot and interns as a fresh frozen route.
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1);
        cache.set_plan(&plan);
        churn.forget_dead(&cache);
        let a2 = cache.resolve(&t, 0, 15);
        assert_ne!(a2, a);
        churn.assign(&cache, a2);
        assert_eq!(churn.num_pairs(), 3);
        assert_eq!(churn.path(churn.slot_of(3)), cache.path(a2));

        // RouteSrc answers per-injection lookups from the frozen arena.
        let src = RouteSrc::Churn(&churn);
        assert_eq!(src.slot_for(0, 0, 15), Some(churn.slot_of(0)));
        assert_eq!(src.path(churn.slot_of(3)), cache.path(a2));
        assert_eq!(src.num_pairs(), 3);
        assert!(src.is_churn());
    }

    #[test]
    fn cache_reasons_are_interned_copy_ids() {
        let t = HypercubeNet::new(3).unwrap();
        let mut plan = FaultPlan::new();
        plan.add_link(0, 1);
        let mut cache = RouteCache::new();
        cache.set_plan(&plan);
        let a = cache.resolve(&t, 0, 1);
        let b = cache.resolve(&t, 0, 3);
        // 0->1 detours (direct link cut); 0->3 routes 0-1-3 so it also
        // detours at hop 0. Both carry the same Copy id — no owned
        // strings anywhere in the snapshot.
        assert_eq!(cache.detour(a).unwrap().1, FaultReason::Link(0, 1));
        assert_eq!(cache.detour(b).unwrap().1, FaultReason::Link(0, 1));
        assert_eq!(cache.detour(a).unwrap().1.to_string(), "link 0-1 faulty");
        // A Detour is two words, not a heap handle.
        assert!(std::mem::size_of::<Detour>() <= 2 * std::mem::size_of::<usize>());
    }

    #[test]
    fn csr_slot_lookup_handles_misses_and_out_of_range() {
        let t = HypercubeNet::new(3).unwrap();
        let table = RouteTable::build(&t, [(1, 6), (1, 2), (0, 7)], &FaultPlan::new());
        assert_eq!(table.num_pairs(), 3);
        // First-seen slot order is preserved even though rows are sorted.
        assert_eq!(table.slot(1, 6), Some(0));
        assert_eq!(table.slot(1, 2), Some(1));
        assert_eq!(table.slot(0, 7), Some(2));
        // Misses: absent pair in a populated row, empty row, and a
        // source outside the topology.
        assert_eq!(table.slot(1, 3), None);
        assert_eq!(table.slot(5, 0), None);
        assert_eq!(table.slot(8, 0), None);
        assert_eq!(table.slot(10_000, 0), None);
    }
}
