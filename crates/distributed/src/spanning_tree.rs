//! Distributed BFS spanning-tree construction and convergecast.
//!
//! The building blocks the election/broadcast literature composes: the
//! root floods a `Grow` wave (each node adopts the first sender as its
//! parent — yielding a BFS tree, since the wave advances one hop per
//! round), children `Ack` their parents, and a convergecast folds an
//! aggregate (here: subtree size) up to the root. The root learning
//! `size == N` doubles as termination detection.

use crate::runtime::{execute_with, Envelope, Protocol, RunOutcome};
use hb_graphs::{Graph, NodeId};
use hb_telemetry::Telemetry;

/// Per-node spanning-tree state.
#[derive(Clone, Debug)]
pub struct TreeState {
    /// Parent in the tree (`usize::MAX` until joined; root points to
    /// itself).
    pub parent: NodeId,
    /// BFS depth (0 at the root).
    pub depth: u32,
    /// Confirmed children.
    pub children: Vec<NodeId>,
    /// Neighbors we still await a grow-reply from.
    pending: usize,
    /// Accumulated subtree size (self + reported children subtrees).
    pub subtree_size: usize,
    /// Convergecast reports received so far.
    reports_received: usize,
    /// Whether this node has reported to its parent (or, for the root,
    /// learned the total).
    pub reported: bool,
}

/// Protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeMsg {
    /// Join my subtree (carries sender depth).
    Grow(u32),
    /// Yes, you are my parent.
    Accept,
    /// No, I already have a parent.
    Reject,
    /// Convergecast: my subtree has this many nodes.
    Size(usize),
}

struct BfsTreeProtocol {
    root: NodeId,
}

impl Protocol for BfsTreeProtocol {
    type State = TreeState;
    type Msg = TreeMsg;

    fn name(&self) -> &'static str {
        "spanning-tree.bfs"
    }

    fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (TreeState, Vec<Envelope<TreeMsg>>) {
        let is_root = v == self.root;
        let state = TreeState {
            parent: if is_root { v } else { usize::MAX },
            depth: 0,
            children: Vec::new(),
            pending: if is_root { neighbors.len() } else { 0 },
            subtree_size: 1,
            reports_received: 0,
            reported: false,
        };
        let out = if is_root {
            neighbors
                .iter()
                .map(|&w| Envelope {
                    from: v,
                    to: w,
                    payload: TreeMsg::Grow(0),
                })
                .collect()
        } else {
            Vec::new()
        };
        (state, out)
    }

    fn step(
        &self,
        v: NodeId,
        st: &mut TreeState,
        inbox: &[Envelope<TreeMsg>],
        neighbors: &[NodeId],
    ) -> (Vec<Envelope<TreeMsg>>, bool) {
        let mut out = Vec::new();
        for env in inbox {
            match env.payload {
                TreeMsg::Grow(d) => {
                    if st.parent == usize::MAX {
                        // First wave to arrive: adopt (BFS property).
                        st.parent = env.from;
                        st.depth = d + 1;
                        out.push(Envelope {
                            from: v,
                            to: env.from,
                            payload: TreeMsg::Accept,
                        });
                        let others: Vec<NodeId> = neighbors
                            .iter()
                            .copied()
                            .filter(|&w| w != env.from)
                            .collect();
                        st.pending = others.len();
                        for w in others {
                            out.push(Envelope {
                                from: v,
                                to: w,
                                payload: TreeMsg::Grow(st.depth),
                            });
                        }
                    } else {
                        out.push(Envelope {
                            from: v,
                            to: env.from,
                            payload: TreeMsg::Reject,
                        });
                    }
                }
                TreeMsg::Accept => {
                    st.children.push(env.from);
                    st.pending -= 1;
                }
                TreeMsg::Reject => {
                    st.pending -= 1;
                }
                TreeMsg::Size(s) => {
                    st.subtree_size += s;
                }
            }
        }
        // Convergecast: once all grow-replies are in and every child's
        // Size report has arrived, report upward (leaves report as soon
        // as their replies are in).
        st.reports_received += inbox
            .iter()
            .filter(|e| matches!(e.payload, TreeMsg::Size(_)))
            .count();
        let joined = st.parent != usize::MAX;
        if joined && !st.reported && st.pending == 0 && st.reports_received == st.children.len() {
            st.reported = true;
            if v != self.root {
                out.push(Envelope {
                    from: v,
                    to: st.parent,
                    payload: TreeMsg::Size(st.subtree_size),
                });
            }
        }
        (out, st.reported)
    }
}

/// Runs distributed BFS-tree construction + convergecast from `root`.
pub fn build_tree(g: &Graph, root: NodeId) -> RunOutcome<TreeState> {
    build_tree_with(g, root, None)
}

/// Like [`build_tree`], reporting rounds/messages (and, at trace level,
/// the per-round span tree) into `telemetry` when one is given.
pub fn build_tree_with(
    g: &Graph,
    root: NodeId,
    telemetry: Option<&Telemetry>,
) -> RunOutcome<TreeState> {
    execute_with(
        g,
        &BfsTreeProtocol { root },
        4 * u32::try_from(g.num_nodes()).expect("invariant: round budgets assume < 2^32 nodes")
            + 16,
        telemetry,
    )
}

/// Validates the outcome: terminated; parents form a tree rooted at
/// `root` whose edges are graph edges; depths are BFS-exact; the root's
/// subtree size is `N`.
pub fn validate(g: &Graph, root: NodeId, out: &RunOutcome<TreeState>) -> Result<(), String> {
    if !out.terminated {
        return Err("tree construction did not terminate".into());
    }
    let bfs = hb_graphs::traverse::bfs(g, root);
    for (v, st) in out.states.iter().enumerate() {
        if v == root {
            if st.parent != root {
                return Err("root parent must be itself".into());
            }
            if st.subtree_size != g.num_nodes() {
                return Err(format!(
                    "root counted {} nodes, expected {}",
                    st.subtree_size,
                    g.num_nodes()
                ));
            }
            continue;
        }
        if st.parent == usize::MAX {
            return Err(format!("node {v} never joined"));
        }
        if !g.has_edge(v, st.parent) {
            return Err(format!(
                "tree edge ({v}, {}) is not a graph edge",
                st.parent
            ));
        }
        if st.depth != bfs.dist[v] {
            return Err(format!(
                "node {v} depth {} != BFS distance {}",
                st.depth, bfs.dist[v]
            ));
        }
        if out.states[st.parent].depth + 1 != st.depth {
            return Err(format!("depth of {v} inconsistent with parent"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::HyperButterfly;
    use hb_graphs::generators;

    #[test]
    fn tree_on_cycle() {
        let g = generators::cycle(8).unwrap();
        let out = build_tree(&g, 3);
        validate(&g, 3, &out).unwrap();
    }

    #[test]
    fn tree_on_hyper_butterfly() {
        let hb = HyperButterfly::new(2, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let out = build_tree(&g, 0);
        validate(&g, 0, &out).unwrap();
        // Construction + convergecast completes in O(diameter) rounds.
        assert!(out.rounds <= 4 * hb.diameter() + 8, "{}", out.rounds);
    }

    #[test]
    fn tree_on_mesh_counts_everyone() {
        let g = generators::mesh(4, 5).unwrap();
        let out = build_tree(&g, 7);
        validate(&g, 7, &out).unwrap();
        assert_eq!(out.states[7].subtree_size, 20);
    }
}
