//! Synchronous message-passing runtime.
//!
//! The standard round-based distributed-computing model over a network
//! graph: in each round every node reads the messages delivered to it at
//! the end of the previous round, updates its state, and emits messages
//! to neighbors. The runtime tracks rounds and message counts — the two
//! complexity measures the leader-election literature (including Shi &
//! Srimani's follow-up paper on hyper-butterfly election) reports.

use hb_graphs::{Graph, NodeId};

/// A message in transit: sender, receiver, payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node (must be a neighbor of `from`).
    pub to: NodeId,
    /// Protocol payload.
    pub payload: M,
}

/// A distributed protocol: per-node state machine.
pub trait Protocol {
    /// Per-node state.
    type State;
    /// Message payload type.
    type Msg: Clone;

    /// Initial state and initial outgoing messages of node `v`.
    /// `neighbors` are `v`'s ports (the node may use ids — the model is
    /// an id-based network, matching the election literature).
    fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (Self::State, Vec<Envelope<Self::Msg>>);

    /// One round: consume this round's inbox, update the state, emit
    /// messages. Returning `true` marks the node locally terminated
    /// (it still receives messages; the run ends when *all* nodes have
    /// terminated and no messages are in flight).
    fn step(
        &self,
        v: NodeId,
        state: &mut Self::State,
        inbox: &[Envelope<Self::Msg>],
        neighbors: &[NodeId],
    ) -> (Vec<Envelope<Self::Msg>>, bool);
}

/// Result of a protocol run.
#[derive(Clone, Debug)]
pub struct RunOutcome<S> {
    /// Final per-node states.
    pub states: Vec<S>,
    /// Rounds executed (init messages are delivered in round 1).
    pub rounds: u32,
    /// Total messages sent (including init messages).
    pub messages: u64,
    /// Whether the run terminated (vs hitting the round limit).
    pub terminated: bool,
}

/// Executes `proto` on `g` synchronously until global termination or
/// `max_rounds`.
///
/// # Panics
/// Panics if a protocol emits a message to a non-neighbor (model
/// violation).
pub fn execute<P: Protocol>(g: &Graph, proto: &P, max_rounds: u32) -> RunOutcome<P::State> {
    let n = g.num_nodes();
    let neighbor_lists: Vec<Vec<NodeId>> = (0..n)
        .map(|v| g.neighbors(v).iter().map(|&w| w as usize).collect())
        .collect();

    let mut states = Vec::with_capacity(n);
    let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); n];
    let mut messages = 0u64;
    let mut done = vec![false; n];

    let deliver = |inboxes: &mut Vec<Vec<Envelope<P::Msg>>>,
                       out: Vec<Envelope<P::Msg>>,
                       from: NodeId,
                       messages: &mut u64| {
        for env in out {
            assert_eq!(env.from, from, "message must carry its true sender");
            assert!(
                g.has_edge(env.from, env.to),
                "protocol sent over non-edge ({}, {})",
                env.from,
                env.to
            );
            *messages += 1;
            inboxes[env.to].push(env);
        }
    };

    for v in 0..n {
        let (st, out) = proto.init(v, &neighbor_lists[v]);
        states.push(st);
        deliver(&mut inboxes, out, v, &mut messages);
    }

    let mut rounds = 0u32;
    let mut terminated = false;
    while rounds < max_rounds {
        let in_flight: usize = inboxes.iter().map(Vec::len).sum();
        if in_flight == 0 && done.iter().all(|&d| d) {
            terminated = true;
            break;
        }
        rounds += 1;
        let current: Vec<Vec<Envelope<P::Msg>>> =
            std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
        for v in 0..n {
            let (out, fin) = proto.step(v, &mut states[v], &current[v], &neighbor_lists[v]);
            if fin {
                done[v] = true;
            }
            deliver(&mut inboxes, out, v, &mut messages);
        }
    }
    if !terminated {
        let in_flight: usize = inboxes.iter().map(Vec::len).sum();
        terminated = in_flight == 0 && done.iter().all(|&d| d);
    }
    RunOutcome { states, rounds, messages, terminated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_graphs::generators;

    /// Trivial protocol: everyone pings every neighbor once, counts
    /// pongs, terminates after receiving one message per neighbor.
    struct PingAll;

    impl Protocol for PingAll {
        type State = usize; // pings received
        type Msg = ();

        fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (usize, Vec<Envelope<()>>) {
            (
                0,
                neighbors.iter().map(|&w| Envelope { from: v, to: w, payload: () }).collect(),
            )
        }

        fn step(
            &self,
            _v: NodeId,
            state: &mut usize,
            inbox: &[Envelope<()>],
            neighbors: &[NodeId],
        ) -> (Vec<Envelope<()>>, bool) {
            *state += inbox.len();
            (Vec::new(), *state >= neighbors.len())
        }
    }

    #[test]
    fn ping_all_terminates_in_one_round() {
        let g = generators::cycle(6).unwrap();
        let out = execute(&g, &PingAll, 10);
        assert!(out.terminated);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.messages, 12); // one per directed edge
        assert!(out.states.iter().all(|&s| s == 2));
    }

    #[test]
    fn round_limit_is_respected() {
        /// Never terminates: bounces a token forever.
        struct Bouncer;
        impl Protocol for Bouncer {
            type State = ();
            type Msg = ();
            fn init(&self, v: NodeId, nb: &[NodeId]) -> ((), Vec<Envelope<()>>) {
                ((), vec![Envelope { from: v, to: nb[0], payload: () }])
            }
            fn step(
                &self,
                v: NodeId,
                _s: &mut (),
                inbox: &[Envelope<()>],
                nb: &[NodeId],
            ) -> (Vec<Envelope<()>>, bool) {
                (
                    inbox.iter().map(|_| Envelope { from: v, to: nb[0], payload: () }).collect(),
                    false,
                )
            }
        }
        let g = generators::cycle(4).unwrap();
        let out = execute(&g, &Bouncer, 7);
        assert!(!out.terminated);
        assert_eq!(out.rounds, 7);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn sending_over_non_edge_panics() {
        struct Cheater;
        impl Protocol for Cheater {
            type State = ();
            type Msg = ();
            fn init(&self, v: NodeId, _nb: &[NodeId]) -> ((), Vec<Envelope<()>>) {
                ((), vec![Envelope { from: v, to: (v + 2) % 5, payload: () }])
            }
            fn step(
                &self,
                _v: NodeId,
                _s: &mut (),
                _i: &[Envelope<()>],
                _nb: &[NodeId],
            ) -> (Vec<Envelope<()>>, bool) {
                (Vec::new(), true)
            }
        }
        let g = generators::cycle(5).unwrap();
        execute(&g, &Cheater, 3);
    }
}
