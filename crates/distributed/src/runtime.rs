//! Synchronous message-passing runtime.
//!
//! The standard round-based distributed-computing model over a network
//! graph: in each round every node reads the messages delivered to it at
//! the end of the previous round, updates its state, and emits messages
//! to neighbors. The runtime tracks rounds and message counts — the two
//! complexity measures the leader-election literature (including Shi &
//! Srimani's follow-up paper on hyper-butterfly election) reports.
//!
//! # Observability
//!
//! [`execute_with`] accepts an optional [`hb_telemetry::Telemetry`]
//! handle. When present, the runtime records each round's message count
//! into the `dist.round_messages` histogram, bumps the `dist.messages` /
//! `dist.rounds` counters, and (at trace level) emits
//! [`RoundStarted`](hb_telemetry::Event::RoundStarted) /
//! [`RoundEnded`](hb_telemetry::Event::RoundEnded) events — a
//! convergence trace showing how traffic decays as a protocol
//! stabilises. At trace level the run additionally becomes a causal
//! **span tree**: one root span per protocol run (attributes: rounds,
//! messages, terminated) with one child span per round carrying that
//! round's message count, sender count, and busiest-node statistics —
//! logical round numbers serve as the span clock, so traces are
//! deterministic and render in `SpanTreeSink` / `ChromeTraceSink`
//! alongside packet flights. [`execute`] passes `None` and pays nothing.
//!
//! Independent of telemetry, every [`RunOutcome`] carries the full
//! per-round breakdown ([`RunOutcome::init_messages`] +
//! [`RunOutcome::round_messages`]), which always sums to
//! [`RunOutcome::messages`].

use hb_graphs::{Graph, NodeId};
use hb_telemetry::{Event, Telemetry};

/// A message in transit: sender, receiver, payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node (must be a neighbor of `from`).
    pub to: NodeId,
    /// Protocol payload.
    pub payload: M,
}

/// A distributed protocol: per-node state machine.
pub trait Protocol {
    /// Per-node state.
    type State;
    /// Message payload type.
    type Msg: Clone;

    /// Short protocol name used to label telemetry events.
    fn name(&self) -> &'static str {
        "protocol"
    }

    /// Initial state and initial outgoing messages of node `v`.
    /// `neighbors` are `v`'s ports (the node may use ids — the model is
    /// an id-based network, matching the election literature).
    fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (Self::State, Vec<Envelope<Self::Msg>>);

    /// One round: consume this round's inbox, update the state, emit
    /// messages. Returning `true` marks the node locally terminated
    /// (it still receives messages; the run ends when *all* nodes have
    /// terminated and no messages are in flight).
    fn step(
        &self,
        v: NodeId,
        state: &mut Self::State,
        inbox: &[Envelope<Self::Msg>],
        neighbors: &[NodeId],
    ) -> (Vec<Envelope<Self::Msg>>, bool);
}

/// Result of a protocol run.
#[derive(Clone, Debug)]
pub struct RunOutcome<S> {
    /// Final per-node states.
    pub states: Vec<S>,
    /// Rounds executed (init messages are delivered in round 1).
    pub rounds: u32,
    /// Total messages sent (including init messages).
    pub messages: u64,
    /// Whether the run terminated (vs hitting the round limit).
    pub terminated: bool,
    /// Messages sent during the init phase (delivered in round 1).
    pub init_messages: u64,
    /// Messages sent in each executed round; `round_messages[r]` is the
    /// count for round `r + 1`, so `round_messages.len() == rounds` and
    /// `init_messages + round_messages.iter().sum::<u64>() == messages`.
    pub round_messages: Vec<u64>,
}

/// Executes `proto` on `g` synchronously until global termination or
/// `max_rounds`.
///
/// # Panics
/// Panics if a protocol emits a message to a non-neighbor (model
/// violation).
pub fn execute<P: Protocol>(g: &Graph, proto: &P, max_rounds: u32) -> RunOutcome<P::State> {
    execute_with(g, proto, max_rounds, None)
}

/// Like [`execute`], but reports into `telemetry` when one is given:
/// per-round message counts land in the `dist.round_messages` histogram,
/// totals in the `dist.messages` / `dist.rounds` counters, and — at
/// trace level — each round is bracketed by
/// [`Event::RoundStarted`] / [`Event::RoundEnded`] events labelled with
/// [`Protocol::name`].
///
/// # Panics
/// Panics if a protocol emits a message to a non-neighbor (model
/// violation).
pub fn execute_with<P: Protocol>(
    g: &Graph,
    proto: &P,
    max_rounds: u32,
    telemetry: Option<&Telemetry>,
) -> RunOutcome<P::State> {
    let n = g.num_nodes();
    let neighbor_lists: Vec<Vec<NodeId>> = (0..n)
        .map(|v| g.neighbors(v).iter().map(|&w| w as usize).collect())
        .collect();

    let mut states = Vec::with_capacity(n);
    let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); n];
    let mut messages = 0u64;
    let mut done = vec![false; n];

    let deliver = |inboxes: &mut Vec<Vec<Envelope<P::Msg>>>,
                   out: Vec<Envelope<P::Msg>>,
                   from: NodeId,
                   messages: &mut u64| {
        for env in out {
            assert_eq!(env.from, from, "message must carry its true sender");
            assert!(
                g.has_edge(env.from, env.to),
                "protocol sent over non-edge ({}, {})",
                env.from,
                env.to
            );
            *messages += 1;
            inboxes[env.to].push(env);
        }
    };

    for (v, nb) in neighbor_lists.iter().enumerate() {
        let (st, out) = proto.init(v, nb);
        states.push(st);
        deliver(&mut inboxes, out, v, &mut messages);
    }
    let init_messages = messages;

    // Root span for the whole run; `None` unless trace-level telemetry
    // is attached (every span call below is then a no-op).
    let root = telemetry.and_then(|t| t.span_start(proto.name(), None, 0));
    if let Some(t) = telemetry {
        t.span_attr(root, "init_messages", init_messages.to_string());
    }

    let mut rounds = 0u32;
    let mut round_messages: Vec<u64> = Vec::new();
    let mut terminated = false;
    while rounds < max_rounds {
        let in_flight: usize = inboxes.iter().map(Vec::len).sum();
        if in_flight == 0 && done.iter().all(|&d| d) {
            terminated = true;
            break;
        }
        rounds += 1;
        if let Some(t) = telemetry {
            t.event(|| Event::RoundStarted {
                protocol: proto.name().to_string(),
                round: rounds,
            });
        }
        let round_span = telemetry
            .and_then(|t| t.span_start(&format!("round {rounds}"), root, u64::from(rounds - 1)));
        let sent_before = messages;
        let current: Vec<Vec<Envelope<P::Msg>>> =
            std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
        // Per-node message statistics, tallied only when the round has a
        // span to attach them to.
        let mut senders = 0u64;
        let mut busiest = (0u64, 0usize); // (count, node)
        for v in 0..n {
            let (out, fin) = proto.step(v, &mut states[v], &current[v], &neighbor_lists[v]);
            if fin {
                done[v] = true;
            }
            if round_span.is_some() {
                let c = out.len() as u64;
                if c > 0 {
                    senders += 1;
                    if c > busiest.0 {
                        busiest = (c, v);
                    }
                }
            }
            deliver(&mut inboxes, out, v, &mut messages);
        }
        let sent = messages - sent_before;
        round_messages.push(sent);
        if let Some(t) = telemetry {
            t.record("dist.round_messages", sent);
            t.event(|| Event::RoundEnded {
                protocol: proto.name().to_string(),
                round: rounds,
                messages: sent,
            });
            if round_span.is_some() {
                t.span_attr(round_span, "messages", sent.to_string());
                t.span_attr(round_span, "senders", senders.to_string());
                t.span_attr(round_span, "max_node_messages", busiest.0.to_string());
                if busiest.0 > 0 {
                    t.span_attr(round_span, "busiest_node", busiest.1.to_string());
                }
                t.span_end(round_span, u64::from(rounds));
            }
        }
    }
    if !terminated {
        let in_flight: usize = inboxes.iter().map(Vec::len).sum();
        terminated = in_flight == 0 && done.iter().all(|&d| d);
    }
    if let Some(t) = telemetry {
        t.counter("dist.messages").add(messages);
        t.counter("dist.rounds").add(rounds as u64);
        if terminated {
            t.counter("dist.terminated").inc();
        }
        t.span_attr(root, "rounds", rounds.to_string());
        t.span_attr(root, "messages", messages.to_string());
        t.span_attr(root, "terminated", terminated.to_string());
        t.span_end(root, u64::from(rounds));
    }
    debug_assert_eq!(
        init_messages + round_messages.iter().sum::<u64>(),
        messages,
        "message conservation"
    );
    RunOutcome {
        states,
        rounds,
        messages,
        terminated,
        init_messages,
        round_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_graphs::generators;

    /// Trivial protocol: everyone pings every neighbor once, counts
    /// pongs, terminates after receiving one message per neighbor.
    struct PingAll;

    impl Protocol for PingAll {
        type State = usize; // pings received
        type Msg = ();

        fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (usize, Vec<Envelope<()>>) {
            (
                0,
                neighbors
                    .iter()
                    .map(|&w| Envelope {
                        from: v,
                        to: w,
                        payload: (),
                    })
                    .collect(),
            )
        }

        fn step(
            &self,
            _v: NodeId,
            state: &mut usize,
            inbox: &[Envelope<()>],
            neighbors: &[NodeId],
        ) -> (Vec<Envelope<()>>, bool) {
            *state += inbox.len();
            (Vec::new(), *state >= neighbors.len())
        }
    }

    #[test]
    fn ping_all_terminates_in_one_round() {
        let g = generators::cycle(6).unwrap();
        let out = execute(&g, &PingAll, 10);
        assert!(out.terminated);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.messages, 12); // one per directed edge
        assert!(out.states.iter().all(|&s| s == 2));
        // Per-round breakdown: everything is sent at init, nothing after.
        assert_eq!(out.init_messages, 12);
        assert_eq!(out.round_messages, vec![0]);
    }

    #[test]
    fn telemetry_records_rounds_and_convergence_trace() {
        use hb_telemetry::Telemetry;

        let g = generators::cycle(6).unwrap();
        let t = Telemetry::with_trace(64);
        let out = execute_with(&g, &PingAll, 10, Some(&t));
        assert!(out.terminated);
        assert_eq!(t.counter("dist.messages").get(), out.messages);
        assert_eq!(t.counter("dist.rounds").get(), u64::from(out.rounds));
        assert_eq!(t.counter("dist.terminated").get(), 1);
        let h = t.histogram("dist.round_messages").unwrap();
        assert_eq!(h.count(), u64::from(out.rounds));
        assert_eq!(h.sum(), out.messages - out.init_messages);
        // One started + one ended event per round, carrying the
        // protocol's (default) name and that round's message count.
        let events = t.events();
        assert_eq!(events.len(), 2 * out.rounds as usize);
        assert!(matches!(
            &events[0],
            Event::RoundStarted { protocol, round: 1 } if protocol == "protocol"
        ));
        assert!(matches!(
            &events[1],
            Event::RoundEnded { protocol, round: 1, messages: 0 } if protocol == "protocol"
        ));
    }

    #[test]
    fn trace_level_builds_a_round_span_tree() {
        use hb_telemetry::Telemetry;

        let g = generators::cycle(6).unwrap();
        let t = Telemetry::with_trace(64);
        let out = execute_with(&g, &PingAll, 10, Some(&t));
        let spans = t.spans();
        // One root (the protocol) + one child per round.
        assert_eq!(spans.len(), 1 + out.rounds as usize);
        let root = &spans[0];
        assert_eq!(root.name, "protocol");
        assert_eq!(root.parent, None);
        assert_eq!(root.start, 0);
        assert_eq!(root.end, Some(u64::from(out.rounds)));
        assert_eq!(root.attr("rounds"), Some("1"));
        assert_eq!(root.attr("messages"), Some("12"));
        assert_eq!(root.attr("init_messages"), Some("12"));
        assert_eq!(root.attr("terminated"), Some("true"));
        let round = &spans[1];
        assert_eq!(round.name, "round 1");
        assert_eq!(round.parent, Some(root.id));
        assert_eq!((round.start, round.end), (0, Some(1)));
        // Nothing is sent after init in PingAll.
        assert_eq!(round.attr("messages"), Some("0"));
        assert_eq!(round.attr("senders"), Some("0"));
        assert_eq!(round.attr("max_node_messages"), Some("0"));

        // Summary level records counters but no spans.
        let s = Telemetry::summary();
        execute_with(&g, &PingAll, 10, Some(&s));
        assert!(s.spans().is_empty());
    }

    #[test]
    fn per_round_counts_sum_to_total() {
        /// Fans a wave out and back: round counts vary, then hit zero.
        struct Wave;
        impl Protocol for Wave {
            type State = bool; // already echoed?
            type Msg = u8;
            fn name(&self) -> &'static str {
                "wave"
            }
            fn init(&self, v: NodeId, nb: &[NodeId]) -> (bool, Vec<Envelope<u8>>) {
                if v == 0 {
                    (
                        true,
                        nb.iter()
                            .map(|&w| Envelope {
                                from: v,
                                to: w,
                                payload: 0,
                            })
                            .collect(),
                    )
                } else {
                    (false, Vec::new())
                }
            }
            fn step(
                &self,
                v: NodeId,
                echoed: &mut bool,
                inbox: &[Envelope<u8>],
                nb: &[NodeId],
            ) -> (Vec<Envelope<u8>>, bool) {
                if !inbox.is_empty() && !*echoed {
                    *echoed = true;
                    (
                        nb.iter()
                            .map(|&w| Envelope {
                                from: v,
                                to: w,
                                payload: 1,
                            })
                            .collect(),
                        true,
                    )
                } else {
                    (Vec::new(), true)
                }
            }
        }
        let g = generators::cycle(8).unwrap();
        let out = execute(&g, &Wave, 32);
        assert!(out.terminated);
        assert_eq!(out.round_messages.len(), out.rounds as usize);
        assert_eq!(
            out.init_messages + out.round_messages.iter().sum::<u64>(),
            out.messages,
            "per-round counts must sum to the total"
        );
        // The wave dies out: the final executed round sends nothing.
        assert_eq!(*out.round_messages.last().unwrap(), 0);
        assert!(out.round_messages.iter().any(|&m| m > 0));
    }

    #[test]
    fn round_limit_is_respected() {
        /// Never terminates: bounces a token forever.
        struct Bouncer;
        impl Protocol for Bouncer {
            type State = ();
            type Msg = ();
            fn init(&self, v: NodeId, nb: &[NodeId]) -> ((), Vec<Envelope<()>>) {
                (
                    (),
                    vec![Envelope {
                        from: v,
                        to: nb[0],
                        payload: (),
                    }],
                )
            }
            fn step(
                &self,
                v: NodeId,
                _s: &mut (),
                inbox: &[Envelope<()>],
                nb: &[NodeId],
            ) -> (Vec<Envelope<()>>, bool) {
                (
                    inbox
                        .iter()
                        .map(|_| Envelope {
                            from: v,
                            to: nb[0],
                            payload: (),
                        })
                        .collect(),
                    false,
                )
            }
        }
        let g = generators::cycle(4).unwrap();
        let out = execute(&g, &Bouncer, 7);
        assert!(!out.terminated);
        assert_eq!(out.rounds, 7);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn sending_over_non_edge_panics() {
        struct Cheater;
        impl Protocol for Cheater {
            type State = ();
            type Msg = ();
            fn init(&self, v: NodeId, _nb: &[NodeId]) -> ((), Vec<Envelope<()>>) {
                (
                    (),
                    vec![Envelope {
                        from: v,
                        to: (v + 2) % 5,
                        payload: (),
                    }],
                )
            }
            fn step(
                &self,
                _v: NodeId,
                _s: &mut (),
                _i: &[Envelope<()>],
                _nb: &[NodeId],
            ) -> (Vec<Envelope<()>>, bool) {
                (Vec::new(), true)
            }
        }
        let g = generators::cycle(5).unwrap();
        execute(&g, &Cheater, 3);
    }
}
