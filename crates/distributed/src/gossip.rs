//! All-to-all dissemination (gossip) by incremental flooding.
//!
//! Every node must learn the full id set (equivalently: every node's
//! token reaches every other node). Each round a node forwards only the
//! tokens it learned in the previous round, so a token crosses each edge
//! at most once per direction and the protocol finishes in eccentricity
//! rounds with `O(N * E)` worst-case messages. Gossip is the all-to-all
//! counterpart of the paper's one-to-all broadcast and the usual follower
//! of leader election (disseminating the leader's configuration).

use crate::runtime::{execute_with, Envelope, Protocol, RunOutcome};
use hb_graphs::{Graph, NodeId};
use hb_telemetry::Telemetry;

/// Per-node gossip state.
#[derive(Clone, Debug)]
pub struct GossipState {
    /// Which tokens this node has seen (`known[t]` = token of node `t`).
    pub known: Vec<bool>,
    /// Number of tokens seen.
    pub count: usize,
}

struct Flooding {
    population: usize,
}

impl Protocol for Flooding {
    type State = GossipState;
    type Msg = Vec<NodeId>; // batch of newly learned tokens

    fn name(&self) -> &'static str {
        "gossip.flooding"
    }

    fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (GossipState, Vec<Envelope<Vec<NodeId>>>) {
        let mut known = vec![false; self.population];
        known[v] = true;
        (
            GossipState { known, count: 1 },
            neighbors
                .iter()
                .map(|&w| Envelope {
                    from: v,
                    to: w,
                    payload: vec![v],
                })
                .collect(),
        )
    }

    fn step(
        &self,
        v: NodeId,
        st: &mut GossipState,
        inbox: &[Envelope<Vec<NodeId>>],
        neighbors: &[NodeId],
    ) -> (Vec<Envelope<Vec<NodeId>>>, bool) {
        let mut fresh = Vec::new();
        for env in inbox {
            for &t in &env.payload {
                if !st.known[t] {
                    st.known[t] = true;
                    st.count += 1;
                    fresh.push(t);
                }
            }
        }
        let out = if fresh.is_empty() {
            Vec::new()
        } else {
            neighbors
                .iter()
                .map(|&w| Envelope {
                    from: v,
                    to: w,
                    payload: fresh.clone(),
                })
                .collect()
        };
        (out, st.count == self.population)
    }
}

/// Runs gossip on `g`; terminates once every node knows every token.
pub fn gossip(g: &Graph) -> RunOutcome<GossipState> {
    gossip_with(g, None)
}

/// Like [`gossip`], but reports per-round message counts and round
/// events into `telemetry` when one is given.
pub fn gossip_with(g: &Graph, telemetry: Option<&Telemetry>) -> RunOutcome<GossipState> {
    execute_with(
        g,
        &Flooding {
            population: g.num_nodes(),
        },
        4 * u32::try_from(g.num_nodes()).expect("invariant: round budgets assume < 2^32 nodes") + 8,
        telemetry,
    )
}

/// Validates: terminated and every node knows all `N` tokens.
pub fn validate(g: &Graph, out: &RunOutcome<GossipState>) -> Result<(), String> {
    if !out.terminated {
        return Err("gossip did not terminate".into());
    }
    for (v, st) in out.states.iter().enumerate() {
        if st.count != g.num_nodes() || st.known.iter().any(|&k| !k) {
            return Err(format!("node {v} learned only {} tokens", st.count));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::HyperButterfly;
    use hb_graphs::{generators, shortest};

    #[test]
    fn gossip_on_cycle() {
        let g = generators::cycle(7).unwrap();
        let out = gossip(&g);
        validate(&g, &out).unwrap();
    }

    #[test]
    fn gossip_on_hyper_butterfly_finishes_in_diameter_plus_one_rounds() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let out = gossip(&g);
        validate(&g, &out).unwrap();
        // Tokens advance one hop per round: diameter rounds to spread,
        // one more for everyone to observe completion.
        let d = shortest::diameter(&g).unwrap();
        assert!(out.rounds <= d + 2, "{} vs diameter {d}", out.rounds);
    }

    #[test]
    fn gossip_exposes_per_round_message_counts() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let t = hb_telemetry::Telemetry::with_trace(256);
        let out = gossip_with(&g, Some(&t));
        validate(&g, &out).unwrap();
        assert_eq!(out.round_messages.len(), out.rounds as usize);
        assert_eq!(
            out.init_messages + out.round_messages.iter().sum::<u64>(),
            out.messages
        );
        // Token batches shrink as knowledge saturates; the final round
        // is silent (everyone already knows everything).
        assert_eq!(*out.round_messages.last().unwrap(), 0);
        // The convergence trace labels rounds with the protocol name.
        assert!(t.events().iter().any(|e| matches!(
            e,
            hb_telemetry::Event::RoundEnded { protocol, .. } if protocol == "gossip.flooding"
        )));
    }

    #[test]
    fn gossip_message_bound() {
        // Each token crosses each directed edge at most once.
        let g = generators::mesh(3, 3).unwrap();
        let out = gossip(&g);
        validate(&g, &out).unwrap();
        // Envelopes batch tokens, so envelope count <= token-crossings.
        let bound = (g.num_nodes() as u64) * 2 * g.num_edges() as u64;
        assert!(out.messages <= bound, "{} > {bound}", out.messages);
    }
}
