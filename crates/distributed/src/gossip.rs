//! All-to-all dissemination (gossip) by incremental flooding.
//!
//! Every node must learn the full id set (equivalently: every node's
//! token reaches every other node). Each round a node forwards only the
//! tokens it learned in the previous round, so a token crosses each edge
//! at most once per direction and the protocol finishes in eccentricity
//! rounds with `O(N * E)` worst-case messages. Gossip is the all-to-all
//! counterpart of the paper's one-to-all broadcast and the usual follower
//! of leader election (disseminating the leader's configuration).

use crate::runtime::{execute, Envelope, Protocol, RunOutcome};
use hb_graphs::{Graph, NodeId};

/// Per-node gossip state.
#[derive(Clone, Debug)]
pub struct GossipState {
    /// Which tokens this node has seen (`known[t]` = token of node `t`).
    pub known: Vec<bool>,
    /// Number of tokens seen.
    pub count: usize,
}

struct Flooding {
    population: usize,
}

impl Protocol for Flooding {
    type State = GossipState;
    type Msg = Vec<NodeId>; // batch of newly learned tokens

    fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (GossipState, Vec<Envelope<Vec<NodeId>>>) {
        let mut known = vec![false; self.population];
        known[v] = true;
        (
            GossipState { known, count: 1 },
            neighbors
                .iter()
                .map(|&w| Envelope { from: v, to: w, payload: vec![v] })
                .collect(),
        )
    }

    fn step(
        &self,
        v: NodeId,
        st: &mut GossipState,
        inbox: &[Envelope<Vec<NodeId>>],
        neighbors: &[NodeId],
    ) -> (Vec<Envelope<Vec<NodeId>>>, bool) {
        let mut fresh = Vec::new();
        for env in inbox {
            for &t in &env.payload {
                if !st.known[t] {
                    st.known[t] = true;
                    st.count += 1;
                    fresh.push(t);
                }
            }
        }
        let out = if fresh.is_empty() {
            Vec::new()
        } else {
            neighbors
                .iter()
                .map(|&w| Envelope { from: v, to: w, payload: fresh.clone() })
                .collect()
        };
        (out, st.count == self.population)
    }
}

/// Runs gossip on `g`; terminates once every node knows every token.
pub fn gossip(g: &Graph) -> RunOutcome<GossipState> {
    execute(g, &Flooding { population: g.num_nodes() }, 4 * g.num_nodes() as u32 + 8)
}

/// Validates: terminated and every node knows all `N` tokens.
pub fn validate(g: &Graph, out: &RunOutcome<GossipState>) -> Result<(), String> {
    if !out.terminated {
        return Err("gossip did not terminate".into());
    }
    for (v, st) in out.states.iter().enumerate() {
        if st.count != g.num_nodes() || st.known.iter().any(|&k| !k) {
            return Err(format!("node {v} learned only {} tokens", st.count));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::HyperButterfly;
    use hb_graphs::{generators, shortest};

    #[test]
    fn gossip_on_cycle() {
        let g = generators::cycle(7).unwrap();
        let out = gossip(&g);
        validate(&g, &out).unwrap();
    }

    #[test]
    fn gossip_on_hyper_butterfly_finishes_in_diameter_plus_one_rounds() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let out = gossip(&g);
        validate(&g, &out).unwrap();
        // Tokens advance one hop per round: diameter rounds to spread,
        // one more for everyone to observe completion.
        let d = shortest::diameter(&g).unwrap();
        assert!(out.rounds <= d + 2, "{} vs diameter {d}", out.rounds);
    }

    #[test]
    fn gossip_message_bound() {
        // Each token crosses each directed edge at most once.
        let g = generators::mesh(3, 3).unwrap();
        let out = gossip(&g);
        validate(&g, &out).unwrap();
        // Envelopes batch tokens, so envelope count <= token-crossings.
        let bound = (g.num_nodes() as u64) * 2 * g.num_edges() as u64;
        assert!(out.messages <= bound, "{} > {bound}", out.messages);
    }
}
