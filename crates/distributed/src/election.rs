//! Leader election by extrema flooding — the problem of Shi & Srimani's
//! follow-up paper *"Leader Election in Hyper-Butterfly Graphs"*.
//!
//! Every node floods the smallest id it has seen; a node forwards only
//! *improvements*, so each node's best-id value decreases at most
//! `log2 N`-ish times and the protocol stabilises after eccentricity
//! rounds. Termination detection uses the standard diameter-bound
//! technique: the network diameter is known (it is, for all topologies
//! here — e.g. `m + n + floor(n/2)` for `HB(m, n)`), and a node
//! terminates once its best value has been stable for `diameter` rounds.
//!
//! Complexity on `HB(m, n)`: `O(diameter)` rounds and `O(E * diameter)`
//! messages worst case, `O(E)`-ish in practice — the benches report the
//! measured counts next to the graph parameters.

use crate::runtime::{execute_with, Envelope, Protocol, RunOutcome};
use hb_graphs::{Graph, NodeId};
use hb_telemetry::Telemetry;

/// Per-node election state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElectionState {
    /// Smallest id seen so far (the eventual leader).
    pub leader: NodeId,
    /// Rounds since `leader` last changed.
    pub stable_rounds: u32,
    /// Whether this node considers the election decided.
    pub decided: bool,
}

struct MinIdFlood {
    diameter: u32,
}

impl Protocol for MinIdFlood {
    type State = ElectionState;
    type Msg = NodeId; // candidate leader id

    fn name(&self) -> &'static str {
        "election.min-id-flood"
    }

    fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (ElectionState, Vec<Envelope<NodeId>>) {
        (
            ElectionState {
                leader: v,
                stable_rounds: 0,
                decided: false,
            },
            neighbors
                .iter()
                .map(|&w| Envelope {
                    from: v,
                    to: w,
                    payload: v,
                })
                .collect(),
        )
    }

    fn step(
        &self,
        v: NodeId,
        state: &mut ElectionState,
        inbox: &[Envelope<NodeId>],
        neighbors: &[NodeId],
    ) -> (Vec<Envelope<NodeId>>, bool) {
        let best_incoming = inbox.iter().map(|e| e.payload).min();
        match best_incoming {
            Some(b) if b < state.leader => {
                state.leader = b;
                state.stable_rounds = 0;
                let fwd = neighbors
                    .iter()
                    .map(|&w| Envelope {
                        from: v,
                        to: w,
                        payload: b,
                    })
                    .collect();
                (fwd, false)
            }
            _ => {
                state.stable_rounds += 1;
                if state.stable_rounds >= self.diameter {
                    state.decided = true;
                }
                (Vec::new(), state.decided)
            }
        }
    }
}

/// Runs min-id flooding election on `g` with the known `diameter`.
/// Returns the runtime outcome; on success every node's state names the
/// same leader (the globally smallest id, i.e. 0 for our dense graphs).
///
/// # Examples
/// ```
/// use hb_core::HyperButterfly;
/// use hb_distributed::election;
/// let hb = HyperButterfly::new(1, 3).unwrap();
/// let g = hb.build_graph().unwrap();
/// let outcome = election::elect(&g, hb.diameter());
/// assert_eq!(election::validate(&outcome).unwrap(), 0);
/// ```
pub fn elect(g: &Graph, diameter: u32) -> RunOutcome<ElectionState> {
    elect_with(g, diameter, None)
}

/// Like [`elect`], but reports per-round message counts and round
/// events into `telemetry` when one is given — the convergence trace
/// shows flooding traffic decaying to zero during the stability window.
pub fn elect_with(
    g: &Graph,
    diameter: u32,
    telemetry: Option<&Telemetry>,
) -> RunOutcome<ElectionState> {
    // Worst case: the min value propagates one hop per round (diameter
    // rounds), then stability counting takes diameter more.
    execute_with(g, &MinIdFlood { diameter }, 4 * diameter + 8, telemetry)
}

/// Validates an election outcome: terminated, unanimous, and the leader
/// is the smallest id.
pub fn validate(out: &RunOutcome<ElectionState>) -> Result<NodeId, String> {
    if !out.terminated {
        return Err("election did not terminate".into());
    }
    let leader = out.states[0].leader;
    if leader != 0 {
        return Err(format!("leader {leader} is not the minimum id"));
    }
    for (v, s) in out.states.iter().enumerate() {
        if !s.decided {
            return Err(format!("node {v} never decided"));
        }
        if s.leader != leader {
            return Err(format!("node {v} disagrees: {} != {leader}", s.leader));
        }
    }
    Ok(leader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::HyperButterfly;
    use hb_graphs::generators;

    #[test]
    fn election_on_cycle() {
        let g = generators::cycle(9).unwrap();
        let out = elect(&g, 4);
        assert_eq!(validate(&out).unwrap(), 0);
        // Rounds: propagation (<= 4) + stability window (4) + slack.
        assert!(out.rounds <= 16, "{}", out.rounds);
    }

    #[test]
    fn election_on_hyper_butterfly() {
        let hb = HyperButterfly::new(2, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let out = elect(&g, hb.diameter());
        assert_eq!(validate(&out).unwrap(), 0);
        assert!(out.rounds <= 3 * hb.diameter() + 8);
    }

    #[test]
    fn election_message_count_is_bounded() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let out = elect(&g, hb.diameter());
        validate(&out).unwrap();
        // Each node forwards only improvements: <= (improvements + 1)
        // bursts of degree messages. Crude but meaningful global bound:
        let e2 = 2 * g.num_edges() as u64;
        assert!(
            out.messages <= e2 * (hb.diameter() as u64 + 1),
            "{}",
            out.messages
        );
    }

    #[test]
    fn election_exposes_per_round_message_counts() {
        let hb = HyperButterfly::new(1, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let t = hb_telemetry::Telemetry::summary();
        let out = elect_with(&g, hb.diameter(), Some(&t));
        validate(&out).unwrap();
        assert_eq!(out.round_messages.len(), out.rounds as usize);
        assert_eq!(
            out.init_messages + out.round_messages.iter().sum::<u64>(),
            out.messages
        );
        // Every node floods its own id at init.
        assert_eq!(out.init_messages, 2 * g.num_edges() as u64);
        // The stability window at the end is silent.
        assert_eq!(*out.round_messages.last().unwrap(), 0);
        // Telemetry mirrors the outcome.
        assert_eq!(t.counter("dist.messages").get(), out.messages);
        assert_eq!(
            t.histogram("dist.round_messages").unwrap().count(),
            u64::from(out.rounds)
        );
    }

    #[test]
    fn validate_rejects_disagreement() {
        let g = generators::path(2).unwrap();
        let mut out = elect(&g, 1);
        validate(&out).unwrap();
        out.states[1].leader = 1;
        assert!(validate(&out).is_err());
    }
}
