//! # hb-distributed — distributed algorithms on hyper-butterfly networks
//!
//! The paper's conclusion and the authors' follow-up work ("Leader
//! Election in Hyper-Butterfly Graphs") treat `HB(m, n)` as a platform
//! for distributed computation. This crate provides the standard
//! synchronous message-passing model and the two primitives that work
//! builds on:
//!
//! * [`runtime`] — the round-based execution engine (per-node state
//!   machines, neighbor-only messaging, round/message accounting);
//! * [`election`] — min-id flooding leader election with diameter-based
//!   termination detection (`O(diameter)` rounds on `HB(m, n)`, whose
//!   diameter `m + n + floor(n/2)` every node can know a priori);
//! * [`allreduce`] — tree-based all-reduce (sum), the canonical
//!   multiprocessor collective;
//! * [`gossip`] — all-to-all token dissemination by incremental
//!   flooding (the all-to-all counterpart of the paper's broadcast);
//! * [`spanning_tree`] — distributed BFS spanning-tree construction with
//!   an accept/reject handshake and a subtree-size convergecast that
//!   doubles as termination detection at the root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allreduce;
pub mod election;
pub mod gossip;
pub mod runtime;
pub mod spanning_tree;

pub use runtime::{execute, execute_with, Envelope, Protocol, RunOutcome};
