//! All-reduce: every node contributes a value; every node learns the
//! global aggregate (here: the sum).
//!
//! The canonical multiprocessor collective, composed from the two
//! primitives this crate already exercises: a BFS spanning tree grows
//! from the root, values **converge-cast** up it (each node reports its
//! subtree sum once all children reported), and the total **broadcasts**
//! back down. Round complexity `O(diameter)`, message complexity
//! `O(E + N)`.

use crate::runtime::{execute_with, Envelope, Protocol, RunOutcome};
use hb_graphs::{Graph, NodeId};
use hb_telemetry::Telemetry;

/// Per-node all-reduce state.
#[derive(Clone, Debug)]
pub struct AllReduceState {
    /// Parent in the tree (root points to itself; `usize::MAX` = not yet
    /// joined).
    pub parent: NodeId,
    /// Confirmed children.
    children: Vec<NodeId>,
    pending_replies: usize,
    reports_received: usize,
    /// Own value plus reported subtree sums.
    subtree_sum: i64,
    reported: bool,
    /// The global sum, once learned.
    pub total: Option<i64>,
}

/// Protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Msg {
    Grow,
    Accept,
    Reject,
    Up(i64),
    Down(i64),
}

struct AllReduce<'a> {
    root: NodeId,
    values: &'a [i64],
}

impl Protocol for AllReduce<'_> {
    type State = AllReduceState;
    type Msg = Msg;

    fn name(&self) -> &'static str {
        "allreduce.tree-sum"
    }

    fn init(&self, v: NodeId, neighbors: &[NodeId]) -> (AllReduceState, Vec<Envelope<Msg>>) {
        let is_root = v == self.root;
        let st = AllReduceState {
            parent: if is_root { v } else { usize::MAX },
            children: Vec::new(),
            pending_replies: if is_root { neighbors.len() } else { 0 },
            reports_received: 0,
            subtree_sum: self.values[v],
            reported: false,
            total: None,
        };
        let out = if is_root {
            neighbors
                .iter()
                .map(|&w| Envelope {
                    from: v,
                    to: w,
                    payload: Msg::Grow,
                })
                .collect()
        } else {
            Vec::new()
        };
        (st, out)
    }

    fn step(
        &self,
        v: NodeId,
        st: &mut AllReduceState,
        inbox: &[Envelope<Msg>],
        neighbors: &[NodeId],
    ) -> (Vec<Envelope<Msg>>, bool) {
        let mut out = Vec::new();
        for env in inbox {
            match env.payload {
                Msg::Grow => {
                    if st.parent == usize::MAX {
                        st.parent = env.from;
                        out.push(Envelope {
                            from: v,
                            to: env.from,
                            payload: Msg::Accept,
                        });
                        let others: Vec<NodeId> = neighbors
                            .iter()
                            .copied()
                            .filter(|&w| w != env.from)
                            .collect();
                        st.pending_replies = others.len();
                        for w in others {
                            out.push(Envelope {
                                from: v,
                                to: w,
                                payload: Msg::Grow,
                            });
                        }
                    } else {
                        out.push(Envelope {
                            from: v,
                            to: env.from,
                            payload: Msg::Reject,
                        });
                    }
                }
                Msg::Accept => {
                    st.children.push(env.from);
                    st.pending_replies -= 1;
                }
                Msg::Reject => {
                    st.pending_replies -= 1;
                }
                Msg::Up(s) => {
                    st.subtree_sum += s;
                    st.reports_received += 1;
                }
                Msg::Down(total) => {
                    st.total = Some(total);
                    for &c in &st.children {
                        out.push(Envelope {
                            from: v,
                            to: c,
                            payload: Msg::Down(total),
                        });
                    }
                }
            }
        }
        // Converge-cast upward once the subtree is settled.
        let joined = st.parent != usize::MAX;
        if joined
            && !st.reported
            && st.pending_replies == 0
            && st.reports_received == st.children.len()
        {
            st.reported = true;
            if v == self.root {
                st.total = Some(st.subtree_sum);
                for &c in &st.children {
                    out.push(Envelope {
                        from: v,
                        to: c,
                        payload: Msg::Down(st.subtree_sum),
                    });
                }
            } else {
                out.push(Envelope {
                    from: v,
                    to: st.parent,
                    payload: Msg::Up(st.subtree_sum),
                });
            }
        }
        (out, st.total.is_some())
    }
}

/// Runs all-reduce (sum) of `values` rooted at `root`.
///
/// # Panics
/// Panics if `values.len() != g.num_nodes()`.
pub fn allreduce_sum(g: &Graph, root: NodeId, values: &[i64]) -> RunOutcome<AllReduceState> {
    allreduce_sum_with(g, root, values, None)
}

/// Like [`allreduce_sum`], reporting rounds/messages (and, at trace
/// level, the per-round span tree) into `telemetry` when one is given.
///
/// # Panics
/// Panics if `values.len() != g.num_nodes()`.
pub fn allreduce_sum_with(
    g: &Graph,
    root: NodeId,
    values: &[i64],
    telemetry: Option<&Telemetry>,
) -> RunOutcome<AllReduceState> {
    assert_eq!(values.len(), g.num_nodes(), "one value per node");
    execute_with(
        g,
        &AllReduce { root, values },
        6 * u32::try_from(g.num_nodes()).expect("invariant: round budgets assume < 2^32 nodes")
            + 16,
        telemetry,
    )
}

/// Validates: terminated and every node learned the exact global sum.
pub fn validate(values: &[i64], out: &RunOutcome<AllReduceState>) -> Result<i64, String> {
    if !out.terminated {
        return Err("all-reduce did not terminate".into());
    }
    let expected: i64 = values.iter().sum();
    for (v, st) in out.states.iter().enumerate() {
        match st.total {
            Some(t) if t == expected => {}
            Some(t) => return Err(format!("node {v} learned {t}, expected {expected}")),
            None => return Err(format!("node {v} never learned the total")),
        }
    }
    Ok(expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::HyperButterfly;
    use hb_graphs::generators;

    #[test]
    fn allreduce_on_cycle() {
        let g = generators::cycle(9).unwrap();
        let values: Vec<i64> = (0..9).map(|v| v * v).collect();
        let out = allreduce_sum(&g, 4, &values);
        assert_eq!(
            validate(&values, &out).unwrap(),
            (0..9).map(|v| v * v).sum::<i64>()
        );
    }

    #[test]
    fn allreduce_on_hyper_butterfly() {
        let hb = HyperButterfly::new(2, 3).unwrap();
        let g = hb.build_graph().unwrap();
        let values: Vec<i64> = (0..g.num_nodes() as i64).collect();
        let out = allreduce_sum(&g, 0, &values);
        let total = validate(&values, &out).unwrap();
        assert_eq!(total, (96 * 95) / 2);
        // O(diameter) rounds.
        assert!(out.rounds <= 6 * hb.diameter() + 8, "{}", out.rounds);
    }

    #[test]
    fn allreduce_with_negative_values() {
        let g = generators::mesh(3, 4).unwrap();
        let values: Vec<i64> = (0..12).map(|v| if v % 2 == 0 { -v } else { v }).collect();
        let out = allreduce_sum(&g, 7, &values);
        validate(&values, &out).unwrap();
    }
}
