//! Property tests: the distributed protocols must work on *any* connected
//! graph, not just the nice topologies.

use hb_distributed::{allreduce, election, gossip, spanning_tree};
use hb_graphs::{graph::Graph, shortest, traverse};
use proptest::prelude::*;

fn random_connected_graph(n: usize, extra_p: u32, seed: u64) -> Graph {
    // Random spanning tree (random parent) + extra random edges.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut edges = std::collections::BTreeSet::new();
    for v in 1..n {
        let p = (next() as usize) % v;
        edges.insert((p.min(v), p.max(v)));
    }
    for u in 0..n {
        for v in u + 1..n {
            if next() % 100 < extra_p as u64 {
                edges.insert((u, v));
            }
        }
    }
    Graph::from_edges(n, edges).expect("simple by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn election_succeeds_on_random_connected_graphs(n in 2usize..40, p in 0u32..30, seed in 0u64..1000) {
        let g = random_connected_graph(n, p, seed);
        let d = shortest::diameter(&g).unwrap();
        let out = election::elect(&g, d.max(1));
        prop_assert_eq!(election::validate(&out).unwrap(), 0);
    }

    #[test]
    fn spanning_tree_succeeds_on_random_connected_graphs(n in 2usize..40, p in 0u32..30, seed in 0u64..1000) {
        let g = random_connected_graph(n, p, seed);
        let root = (seed as usize) % n;
        let out = spanning_tree::build_tree(&g, root);
        spanning_tree::validate(&g, root, &out).unwrap();
    }

    #[test]
    fn gossip_succeeds_and_is_diameter_bounded(n in 2usize..40, p in 0u32..30, seed in 0u64..1000) {
        let g = random_connected_graph(n, p, seed);
        prop_assume!(traverse::is_connected(&g));
        let out = gossip::gossip(&g);
        gossip::validate(&g, &out).unwrap();
        let d = shortest::diameter(&g).unwrap();
        prop_assert!(out.rounds <= d + 2, "{} vs diameter {}", out.rounds, d);
    }

    #[test]
    fn allreduce_sums_exactly(n in 2usize..40, p in 0u32..30, seed in 0u64..1000) {
        let g = random_connected_graph(n, p, seed);
        let values: Vec<i64> = (0..n as i64).map(|v| v * 3 - 7).collect();
        let root = (seed as usize).wrapping_mul(7) % n;
        let out = allreduce::allreduce_sum(&g, root, &values);
        let total = allreduce::validate(&values, &out).unwrap();
        prop_assert_eq!(total, values.iter().sum::<i64>());
    }
}
