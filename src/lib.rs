//! # hyper-butterfly — reproduction of Shi & Srimani (IPPS 1998)
//!
//! *Hyper-Butterfly Network: A Scalable Optimally Fault Tolerant
//! Architecture.*
//!
//! This facade crate re-exports the workspace:
//!
//! * [`hb_core`] — the hyper-butterfly `HB(m, n)` itself: construction,
//!   optimal routing, `m + 4` disjoint paths, fault-tolerant routing,
//!   embeddings, broadcast, comparison metrics;
//! * [`hb_hypercube`] / [`hb_butterfly`] — the two product factors;
//! * [`hb_debruijn`] — the hyper-deBruijn baseline the paper compares
//!   against;
//! * [`hb_graphs`] — the graph substrate (BFS/APSP, max-flow
//!   connectivity, generators, embedding validation);
//! * [`hb_group`] — Cayley-graph machinery and signed cyclic sequences;
//! * [`hb_netsim`] — the packet-level network simulator.
//!
//! ## Quickstart
//!
//! ```
//! use hb_core::{HyperButterfly, routing};
//!
//! let hb = HyperButterfly::new(3, 4).expect("valid dimensions");
//! assert_eq!(hb.degree(), 7);                 // m + 4, regular
//! assert_eq!(hb.num_nodes(), 4 << (3 + 4));   // n * 2^(m+n)
//! assert_eq!(hb.diameter(), 3 + 4 + 2);       // m + n + floor(n/2)
//!
//! let u = hb.identity_node();
//! let v = hb.node(123);
//! let path = routing::route(&hb, u, v);
//! assert_eq!(path.len() as u32, routing::distance(&hb, u, v) + 1);
//! ```

#![forbid(unsafe_code)]

pub use hb_butterfly;
pub use hb_core;
pub use hb_debruijn;
pub use hb_distributed;
pub use hb_graphs;
pub use hb_group;
pub use hb_hypercube;
pub use hb_netsim;
pub use hb_telemetry;
