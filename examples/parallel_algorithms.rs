//! The emulation payoff: classic parallel algorithms running on the
//! hyper-butterfly's own links.
//!
//! * bitonic sort, reduction, and prefix sums as *normal hypercube
//!   algorithms* on the butterfly factor (every step is a real butterfly
//!   edge);
//! * matrix-vector multiply on the Theorem-4 mesh-of-trees embedding
//!   (every transfer is a real hyper-butterfly edge).
//!
//! Run with: `cargo run --release --example parallel_algorithms`

use hb_butterfly::{emulate, Butterfly};
use hb_core::{emulate as hb_emulate, HyperButterfly};

fn main() {
    // Bitonic sort of 32 keys on B_5.
    let b = Butterfly::new(5).expect("B_5");
    let keys: Vec<i64> = (0..32).map(|k| (k * 37 + 11) % 100).collect();
    let (sorted, steps) = emulate::bitonic_sort(&b, keys.clone());
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "bitonic sort of {} keys on B(5): {} butterfly steps",
        keys.len(),
        steps
    );
    println!("  in : {keys:?}");
    println!("  out: {sorted:?}");

    // Global reduction in exactly n steps.
    let values: Vec<i64> = (0..32).collect();
    let (sums, steps) = emulate::reduce_all(&b, values, |a, c| a + c);
    println!(
        "\nreduce_all on B(5): every column holds {} after {steps} steps",
        sums[0]
    );

    // Prefix sums.
    let values: Vec<i64> = vec![1; 32];
    let (prefix, steps) = emulate::prefix_sums(&b, values);
    println!(
        "prefix sums of thirty-two 1s in {steps} steps: last = {}",
        prefix[31]
    );

    // Matrix-vector multiply on MT(2, 8) inside HB(2, 3).
    let hb = HyperButterfly::new(2, 3).expect("HB(2,3)");
    let a: Vec<i64> = (0..16).map(|k| k % 4).collect(); // 2 x 8
    let x: Vec<i64> = (0..8).map(|j| j + 1).collect();
    let out = hb_emulate::matvec(&hb, 1, 3, &a, &x).expect("matvec");
    println!(
        "\nmatvec (2 x 8) on the mesh-of-trees embedding in HB(2, 3):\n  y = {:?} in {} rounds, {} messages (all over real HB edges)",
        out.y, out.rounds, out.messages
    );
}
