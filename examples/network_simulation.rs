//! Packet-level simulation: hyper-butterfly vs hyper-deBruijn vs
//! hypercube at a matched 256-node budget under uniform traffic, plus a
//! targeted-fault disconnection comparison.
//!
//! Run with: `cargo run --release --example network_simulation`

use hb_netsim::faults;
use hb_netsim::topology::{
    HbRouteOrder, HyperButterflyNet, HyperDeBruijnNet, HypercubeNet, NetTopology,
};
use hb_netsim::{run, sim::SimConfig, workload};

fn main() {
    let topos: Vec<Box<dyn NetTopology>> = vec![
        Box::new(HyperButterflyNet::new(2, 4, HbRouteOrder::CubeFirst).expect("HB(2,4)")),
        Box::new(HyperDeBruijnNet::new(2, 6).expect("HD(2,6)")),
        Box::new(HypercubeNet::new(8).expect("H(8)")),
    ];

    println!("uniform traffic, 256 nodes, rate 0.1 packets/node/cycle, 300 cycles:");
    for t in &topos {
        let inj = workload::uniform(t.num_nodes(), 300, 0.1, 1);
        let stats = run(t.as_ref(), &inj, SimConfig::default());
        println!(
            "  {:<10} delivered {:>5}/{:<5} avg latency {:>6.2} avg hops {:>5.2} peak queue {}",
            t.name(),
            stats.delivered,
            stats.offered,
            stats.avg_latency,
            stats.avg_hops,
            stats.peak_queue
        );
    }

    println!("\ntargeted faults around a weakest node (20 trials each):");
    for t in &topos {
        let g = t.graph();
        print!("  {:<10}", t.name());
        for f in 1..=7 {
            let s = faults::adversarial_fault_trials(g, f, 20, 9);
            print!(" f={f}:{:>3}%", 100 * s.connected / s.trials);
        }
        println!();
    }
    println!("(HB(2,4) survives 100% through f = 5; HD(2,6) collapses at f = 4 —");
    println!(" exactly the m+4 vs m+2 fault-tolerance gap the paper proves.)");
}
