//! Quickstart: build a hyper-butterfly, inspect the properties the paper
//! proves, and route between two nodes.
//!
//! Run with: `cargo run --release --example quickstart`

use hb_core::{routing, HbNode, HyperButterfly};
use hb_group::signed::SignedCycle;

fn main() {
    // HB(3, 4): hypercube part of dimension 3, butterfly part B_4.
    let hb = HyperButterfly::new(3, 4).expect("valid dimensions");

    println!("HB(3, 4)");
    println!("  nodes            = {}   (n * 2^(m+n))", hb.num_nodes());
    println!(
        "  edges            = {}   ((m+4) * n * 2^(m+n-1))",
        hb.num_edges()
    );
    println!("  degree           = {}      (regular, m + 4)", hb.degree());
    println!(
        "  diameter         = {}     (m + n + floor(n/2))",
        hb.diameter()
    );
    println!(
        "  connectivity     = {}      (maximally fault tolerant)",
        hb.connectivity()
    );

    // Nodes carry two-part labels: hypercube bits and a signed cyclic
    // permutation of symbols (printed like the paper: ~ = complemented).
    let u = hb.identity_node();
    let v = HbNode::new(0b101, SignedCycle::new(4, 2, 0b0110));
    println!("\nrouting {u} -> {v}");
    println!("  distance = {}", routing::distance(&hb, u, v));
    for (i, x) in routing::route(&hb, u, v).iter().enumerate() {
        println!("  step {i}: {x}");
    }

    // The diameter witness pair from Theorem 3's proof.
    let (a, b) = routing::diameter_witness(&hb);
    println!(
        "\ndiameter witness: {a} -> {b} at distance {}",
        routing::distance(&hb, a, b)
    );
}
