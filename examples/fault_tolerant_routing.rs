//! Fault-tolerant routing (Theorem 5 + Remark 10): build the m + 4
//! internally vertex-disjoint paths between two nodes, knock out m + 3
//! of them with faults, and still deliver.
//!
//! Run with: `cargo run --release --example fault_tolerant_routing`

use hb_core::disjoint::DisjointEngine;
use hb_core::{fault_routing, HyperButterfly};

fn main() {
    let hb = HyperButterfly::new(2, 4).expect("valid dimensions");
    let engine = DisjointEngine::new(hb).expect("engine");

    let u = hb.identity_node();
    let v = hb.node(hb.num_nodes() - 1);

    // Theorem 5: m + 4 = 6 internally vertex-disjoint paths.
    let family = engine.paths(u, v).expect("family");
    println!("{} vertex-disjoint paths {u} -> {v}:", family.len());
    for (i, p) in family.iter().enumerate() {
        let mid: Vec<String> = p.iter().map(|x| x.to_string()).collect();
        println!("  path {i} ({} hops): {}", p.len() - 1, mid.join(" -> "));
    }

    // Remark 10: fault one internal node of every path but one; the
    // family router survives by construction.
    let faults: Vec<_> = family[..family.len() - 1]
        .iter()
        .map(|p| p[1]) // first internal node of each path
        .collect();
    println!(
        "\ninjecting {} faults (the maximum tolerable is m + 3 = {})",
        faults.len(),
        hb.degree() - 1
    );
    for f in &faults {
        println!("  fault at {f}");
    }
    let route = fault_routing::route_avoiding(&engine, u, v, &faults)
        .expect("endpoints healthy")
        .expect("Theorem 5 guarantees a surviving path");
    let steps: Vec<String> = route.iter().map(|x| x.to_string()).collect();
    println!(
        "\nsurviving route ({} hops): {}",
        route.len() - 1,
        steps.join(" -> ")
    );
}
