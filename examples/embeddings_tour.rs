//! Tour of the Section-4 embeddings: Hamiltonian cycle, a torus, the
//! complete binary tree, and a mesh of trees — all constructed and
//! validated against the real graph.
//!
//! Run with: `cargo run --release --example embeddings_tour`

use hb_core::{embed, HyperButterfly};
use hb_graphs::embedding::{validate_cycle, validate_tree_embedding, Embedding};
use hb_graphs::generators;

fn main() {
    let hb = HyperButterfly::new(2, 3).expect("valid dimensions");
    let host = hb.build_graph().expect("graph");
    println!(
        "HB(2, 3): {} nodes, {} edges",
        host.num_nodes(),
        host.num_edges()
    );

    // Lemma 2 extremes: the smallest even cycle and the Hamiltonian one.
    let c4 = embed::even_cycle(&hb, 4).expect("C4");
    validate_cycle(&host, &c4).expect("C4 validates");
    println!("C(4) embedded: {:?}", c4);

    let ham = embed::hamiltonian_cycle(&hb).expect("Hamiltonian");
    validate_cycle(&host, &ham).expect("Hamiltonian validates");
    println!("Hamiltonian cycle of length {} validated", ham.len());

    // A 4 x 6 torus: C(4) from the hypercube factor, C(6) = 2 butterfly
    // columns.
    let map = embed::torus(&hb, 4, 2, 0).expect("torus");
    let guest = generators::torus(4, 6).expect("guest");
    Embedding { map }
        .validate(&guest, &host)
        .expect("torus validates");
    println!("torus M(4, 6) embedded and validated");

    // Complete binary tree T(n + 1 + floor(m/2)) = T(5).
    let (parent, map) = embed::binary_tree(&hb);
    validate_tree_embedding(&host, &parent, &map).expect("tree validates");
    println!(
        "complete binary tree T({}) embedded ({} nodes)",
        embed::binary_tree_levels(&hb),
        map.len()
    );

    // Theorem 4: mesh of trees MT(2, 8).
    let map = embed::mesh_of_trees(&hb, 1, 3).expect("MT");
    let guest = generators::mesh_of_trees(2, 8).expect("guest");
    let nodes = guest.num_nodes();
    Embedding { map }
        .validate(&guest, &host)
        .expect("MT validates");
    println!("mesh of trees MT(2, 8) embedded ({nodes} guest nodes)");
}
