//! Interactive-ish explorer: print the measured comparison row for any
//! `HB(m, n)` and its same-(m,n) hyper-deBruijn baseline.
//!
//! Run with: `cargo run --release --example topology_explorer -- 3 5`

use hb_core::metrics::{
    hyper_butterfly_metrics, hyper_debruijn_metrics, render_table, MeasureLevel,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let m: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let n: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let level = if args.iter().any(|a| a == "--full") {
        MeasureLevel::Full
    } else {
        MeasureLevel::Diameter
    };
    let rows = vec![
        hyper_butterfly_metrics(m, n, level).expect("HB metrics"),
        hyper_debruijn_metrics(m, n, level).expect("HD metrics"),
    ];
    print!("{}", render_table(&rows));
}
