//! Distributed leader election on the hyper-butterfly (the authors'
//! follow-up paper's problem) — min-id flooding with diameter-based
//! termination, compared across HB / HD / hypercube at a matched size.
//!
//! Run with: `cargo run --release --example leader_election`

use hb_core::HyperButterfly;
use hb_debruijn::HyperDeBruijn;
use hb_distributed::{election, spanning_tree};
use hb_hypercube::Hypercube;

fn main() {
    // 256-node instances.
    let hb = HyperButterfly::new(2, 4).expect("HB(2,4)");
    let hd = HyperDeBruijn::new(2, 6).expect("HD(2,6)");
    let hc = Hypercube::new(8).expect("H(8)");

    let cases: Vec<(String, hb_graphs::Graph, u32)> = vec![
        ("HB(2, 4)".into(), hb.build_graph().unwrap(), hb.diameter()),
        ("HD(2, 6)".into(), hd.build_graph().unwrap(), hd.diameter()),
        ("H(8)".into(), hc.build_graph().unwrap(), hc.diameter()),
    ];

    println!("min-id flooding election (diameter known a priori per topology):");
    println!(
        "{:<10} {:>6} {:>9} {:>10} {:>10}",
        "topology", "nodes", "diameter", "rounds", "messages"
    );
    for (name, g, diam) in &cases {
        let out = election::elect(g, *diam);
        let leader = election::validate(&out).expect("election must succeed");
        assert_eq!(leader, 0);
        println!(
            "{:<10} {:>6} {:>9} {:>10} {:>10}",
            name,
            g.num_nodes(),
            diam,
            out.rounds,
            out.messages
        );
    }

    println!("\ndistributed BFS spanning tree + subtree-size convergecast (root 0):");
    for (name, g, _) in &cases {
        let out = spanning_tree::build_tree(g, 0);
        spanning_tree::validate(g, 0, &out).expect("tree must validate");
        println!(
            "{:<10} rounds {:>4}  messages {:>7}  root counted {} nodes",
            name, out.rounds, out.messages, out.states[0].subtree_size
        );
    }
}
