/root/repo/vendor/stubs/rand/target/debug/deps/rand-970f52d569eaf03c.d: src/lib.rs

/root/repo/vendor/stubs/rand/target/debug/deps/librand-970f52d569eaf03c.rlib: src/lib.rs

/root/repo/vendor/stubs/rand/target/debug/deps/librand-970f52d569eaf03c.rmeta: src/lib.rs

src/lib.rs:
