/root/repo/vendor/stubs/rand/target/debug/deps/rand-3c3e28eee24915d2.d: src/lib.rs

/root/repo/vendor/stubs/rand/target/debug/deps/rand-3c3e28eee24915d2: src/lib.rs

src/lib.rs:
