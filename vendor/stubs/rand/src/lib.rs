//! Offline deterministic stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to the crates.io
//! registry, so external dependencies are replaced by committed stubs via
//! `[patch.crates-io]` (see the workspace `Cargo.toml`). This stub mirrors
//! the small subset of the rand 0.9 API the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::random`] for `f64`/`f32`/`u64`/`u32`/`bool`
//! * [`Rng::random_range`] over integer `Range`/`RangeInclusive`
//! * [`Rng::random_bool`]
//!
//! The generator is **not** the real rand algorithm (ChaCha12): it is
//! SplitMix64, chosen because it is tiny, well-studied, and trivially
//! reproducible from this file alone. All committed golden outputs that
//! involve seeded randomness (e.g. `BENCH_baseline.json`) are pinned to
//! the exact sequences produced here, so this file is part of the repo's
//! determinism contract: **never change the algorithm** without
//! regenerating every seeded golden.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The one SplitMix64 step every stub generator is built from.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::random`] (subset of `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one value from the generator's next output(s).
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`] (subset of `SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                // Lemire multiply-shift; bias is < span / 2^64, far below
                // anything observable at the span sizes this repo uses.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range: every draw is valid.
                    return lo + rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit = f64::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A value of type `T` drawn from the standard distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A value drawn uniformly from `range`.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

/// Generator implementations (subset of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: SplitMix64.
    ///
    /// Committed goldens are pinned to this exact sequence; see the crate
    /// docs before changing anything here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Alias: the workspace treats SmallRng and StdRng identically.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    /// The first outputs for seed 42 — the sequence every committed
    /// golden is pinned to. If this test fails, seeded goldens are
    /// invalid.
    #[test]
    fn splitmix_sequence_is_pinned() {
        let mut r = StdRng::seed_from_u64(42);
        assert_eq!(r.next_u64(), 0xbdd7_3226_2feb_6e95);
        let mut r = StdRng::seed_from_u64(42);
        let f: f64 = r.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn ranges_hit_every_value_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.random_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for i in 0..50u64 {
            let v = r.random_range(3..=9u64);
            assert!((3..=9).contains(&v), "draw {i}: {v}");
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = StdRng::seed_from_u64(1234);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
