//! Offline minimal stand-in for `criterion`.
//!
//! Replaces criterion via `[patch.crates-io]` so the workspace's bench
//! targets compile without registry access (see the workspace
//! `Cargo.toml`). Each benchmark body runs exactly once per invocation
//! and a single coarse wall-clock line is printed — enough to smoke-test
//! that benches execute; use the repo's own `hb-bench` harness for real
//! measurements.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` once under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _c: self,
        }
    }
}

/// A benchmark group (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored — the stand-in runs each body once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs `f` once under `self.name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IdLike,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        run_one(&full, &mut f);
        self
    }

    /// Runs `f` once with `input` under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IdLike,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        let mut b = Bencher::default();
        let start = Instant::now();
        f(&mut b, input);
        println!("bench {full}: {:?} (1 pass)", start.elapsed());
        self
    }

    /// Ends the group (no-op).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher::default();
    let start = Instant::now();
    f(&mut b);
    println!("bench {id}: {:?} (1 pass)", start.elapsed());
}

/// Accepts both `&str` ids and [`BenchmarkId`]s.
pub trait IdLike {
    /// Rendered id text.
    fn render(&self) -> String;
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl IdLike for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        self.text.clone()
    }
}

/// A parameterised benchmark id (subset of `criterion::BenchmarkId`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{parameter}"),
        }
    }
}

/// Runs the measured body (subset of `criterion::Bencher`).
#[derive(Default)]
pub struct Bencher {}

impl Bencher {
    /// Runs `f` once and black-boxes its output.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
}

/// Declares the benchmark entry points (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
