//! Offline empty stand-in for `crossbeam`: the workspace declares the
//! dependency but does not use it; this satisfies resolution without
//! registry access (see the workspace `Cargo.toml` `[patch.crates-io]`).
