//! Offline empty stand-in for `serde`: the workspace declares the
//! dependency (with the `derive` feature) but does not use it; this
//! satisfies resolution without registry access (see the workspace
//! `Cargo.toml` `[patch.crates-io]`).
