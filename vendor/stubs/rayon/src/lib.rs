//! Offline sequential stand-in for `rayon`.
//!
//! Replaces rayon via `[patch.crates-io]` so the workspace builds without
//! registry access (see the workspace `Cargo.toml`). Every "parallel"
//! iterator here runs sequentially on the calling thread — semantically
//! identical for the deterministic, order-independent reductions this
//! repo uses, just without the parallel speedup. The container this repo
//! is developed in is single-core, so nothing is lost in practice.

/// Sequential stand-in for rayon's parallel iterator.
///
/// Wraps a plain [`Iterator`] and exposes the subset of
/// `ParallelIterator` adapters the workspace uses. Adapters preserve
/// iteration order, which is stronger than rayon's contract — callers
/// relying only on rayon semantics observe no difference.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Transforms each element.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<core::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Keeps elements matching the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<core::iter::Filter<I, F>> {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// Transforms and filters in one pass.
    pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
        self,
        f: F,
    ) -> ParIter<core::iter::FilterMap<I, F>> {
        ParIter {
            inner: self.inner.filter_map(f),
        }
    }

    /// Flattens nested iterables produced per element.
    pub fn flat_map<B: IntoIterator, F: FnMut(I::Item) -> B>(
        self,
        f: F,
    ) -> ParIter<core::iter::FlatMap<I, B, F>> {
        ParIter {
            inner: self.inner.flat_map(f),
        }
    }

    /// Runs `f` on every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f);
    }

    /// Collects into any `FromIterator` target.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Sums the elements.
    pub fn sum<S: core::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Counts the elements.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Largest element, if any.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.max()
    }

    /// Smallest element, if any.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.min()
    }

    /// Whether any element matches.
    pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.inner;
        let mut f = f;
        it.any(|x| f(x))
    }

    /// Whether all elements match.
    pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.inner;
        let mut f = f;
        it.all(|x| f(x))
    }

    /// Rayon-style reduce: fold from `identity()` with `op`.
    ///
    /// Sequentially this is exactly `fold(identity(), op)`; rayon may
    /// split and recombine, which agrees whenever `op` is associative
    /// with `identity()` as a unit — the contract callers already uphold.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }
}

impl<I, T, E> ParIter<I>
where
    I: Iterator<Item = Result<T, E>>,
{
    /// Rayon-style fallible reduce: folds `Ok` values from `identity()`
    /// with `op`, short-circuiting on the first `Err`.
    pub fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Result<T, E>
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> Result<T, E>,
    {
        let mut acc = identity();
        for item in self.inner {
            acc = op(acc, item?)?;
        }
        Ok(acc)
    }
}

/// Conversion into a "parallel" iterator (owned).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts self into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::IntoIter;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Conversion into a "parallel" iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: 'a;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterates shared references in a [`ParIter`].
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = core::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<core::slice::Iter<'a, T>> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = core::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<core::slice::Iter<'a, T>> {
        ParIter { inner: self.iter() }
    }
}

/// Runs both closures (sequentially here) and returns their results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of "worker threads" — always 1 in the sequential stand-in.
pub fn current_num_threads() -> usize {
    1
}

/// The traits rayon users glob-import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let total = (0..100u64)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100u64).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn par_iter_over_slices() {
        let v = vec![3, 1, 4, 1, 5];
        let s: i32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 14);
        let m = v.par_iter().map(|&x| x).max();
        assert_eq!(m, Some(5));
    }

    #[test]
    fn collect_preserves_order() {
        let out: Vec<usize> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }
}
