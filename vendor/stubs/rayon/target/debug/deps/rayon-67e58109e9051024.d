/root/repo/vendor/stubs/rayon/target/debug/deps/rayon-67e58109e9051024.d: src/lib.rs

/root/repo/vendor/stubs/rayon/target/debug/deps/librayon-67e58109e9051024.rlib: src/lib.rs

/root/repo/vendor/stubs/rayon/target/debug/deps/librayon-67e58109e9051024.rmeta: src/lib.rs

src/lib.rs:
