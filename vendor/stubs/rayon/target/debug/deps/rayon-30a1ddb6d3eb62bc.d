/root/repo/vendor/stubs/rayon/target/debug/deps/rayon-30a1ddb6d3eb62bc.d: src/lib.rs

/root/repo/vendor/stubs/rayon/target/debug/deps/rayon-30a1ddb6d3eb62bc: src/lib.rs

src/lib.rs:
