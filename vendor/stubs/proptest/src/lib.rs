//! Offline deterministic stand-in for `proptest`.
//!
//! Replaces proptest via `[patch.crates-io]` so the workspace builds
//! without registry access (see the workspace `Cargo.toml`). It covers
//! the subset of the API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` parameters,
//! * integer `Range`/`RangeInclusive` strategies,
//! * [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from real proptest, by design: cases are generated from a
//! fixed seed (fully reproducible run-to-run, no persistence files) and
//! failures do **not** shrink — the failing inputs are printed verbatim.

/// Test-runner configuration (subset of `proptest::test_runner`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case` of the named property.
    pub fn for_case(name: &str, case: u64) -> Self {
        // Mix the property name so different properties see different
        // streams even at the same case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value: core::fmt::Debug;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// A strategy producing a fixed value (subset of `proptest::strategy`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `bool` strategy: uniform coin flip (stand-in for `any::<bool>()`).
#[derive(Clone, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` strategy: length drawn from `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything property tests glob-import.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// runs `cases` deterministic generated inputs. Attributes on the fns
/// (including `#[test]`) pass through unchanged, matching how the
/// workspace writes its property tests.
#[macro_export]
macro_rules! proptest {
    // Internal muncher arms must precede the public catch-all, or the
    // catch-all would re-wrap `@cfg` invocations and recurse forever.
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                let mut inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let value = $crate::Strategy::generate(&$strat, &mut rng);
                    inputs.push(format!("{} = {:?}", stringify!($arg), value));
                    let $arg = value;
                )+
                let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                    { $body }
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!(
                        "property {} failed at case {case} with inputs: {}\n{msg}",
                        stringify!($name),
                        inputs.join(", "),
                    );
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the current case when the assumption does not hold.
///
/// Real proptest rejects and regenerates; here the case simply passes,
/// which preserves soundness (no false failures) at a small coverage
/// cost on heavily-filtered properties.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Asserts a condition inside [`proptest!`], reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {a:?}\n right: {b:?}",
                stringify!($a),
                stringify!($b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {a:?}\n right: {b:?}\n{}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)*),
            ));
        }
    }};
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: {} != {} (both {a:?})",
                stringify!($a),
                stringify!($b),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0u64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_respect_length(v in collection::vec(0usize..4, 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (1u32..=3, 3u32..=5)) {
            prop_assert!((1..=3).contains(&a));
            prop_assert!((3..=5).contains(&b));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("p", 3);
        let mut b = crate::TestRng::for_case("p", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("q", 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
