/root/repo/vendor/stubs/proptest/target/debug/deps/proptest-d7bdae870a387d82.d: src/lib.rs

/root/repo/vendor/stubs/proptest/target/debug/deps/libproptest-d7bdae870a387d82.rlib: src/lib.rs

/root/repo/vendor/stubs/proptest/target/debug/deps/libproptest-d7bdae870a387d82.rmeta: src/lib.rs

src/lib.rs:
