/root/repo/vendor/stubs/proptest/target/debug/deps/proptest-6a1d24f016db8587.d: src/lib.rs

/root/repo/vendor/stubs/proptest/target/debug/deps/proptest-6a1d24f016db8587: src/lib.rs

src/lib.rs:
